"""Bid-pricing structure shared by all partners.

The per-partner :class:`~repro.ecosystem.partners.BidBehavior` decides *whether*
a partner bids and provides its base price level; this module provides the
structural multipliers that apply uniformly across the ecosystem:

* per-ad-slot-size elasticity (Figure 23: 120x600 is the most expensive slot
  by median price, 300x50 the cheapest),
* per-facet price level (Figure 22: client-side HB draws the highest bids),
* a popularity attenuation (Figure 24: the most popular partners bid lower
  and more consistently than the long tail).

Keeping these in one module means calibration changes touch exactly one place
and the benchmark comparisons against the paper stay interpretable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.models import AdSlotSize, HBFacet

__all__ = [
    "SIZE_PRICE_MULTIPLIERS",
    "FACET_PRICE_MULTIPLIERS",
    "size_price_multiplier",
    "facet_price_multiplier",
    "popularity_price_multiplier",
    "PricingModel",
]


#: Relative median price level per creative size, normalised to the reference
#: 300x250 "medium rectangle" (multiplier 1.0).  Values are calibrated so the
#: reproduced Figure 23 preserves the paper's ordering: 120x600 most expensive
#: (~0.096 CPM median), 300x250 at ~0.031 CPM, 300x50 cheapest (~0.00084 CPM).
SIZE_PRICE_MULTIPLIERS: Mapping[str, float] = {
    "120x600": 3.10,
    "970x250": 2.20,
    "300x600": 1.90,
    "160x600": 1.45,
    "336x280": 1.25,
    "970x90": 1.10,
    "300x250": 1.00,
    "728x90": 0.82,
    "468x60": 0.55,
    "320x320": 0.50,
    "320x100": 0.38,
    "300x100": 0.30,
    "100x200": 0.24,
    "320x50": 0.20,
    "300x50": 0.027,
}

#: Default multiplier for sizes that are not in the calibrated table; scaled
#: by creative area relative to 300x250 with a dampening exponent.
_DEFAULT_SIZE_REFERENCE_AREA = 300 * 250
_DEFAULT_SIZE_EXPONENT = 0.6

#: Relative price level per HB facet (Figure 22: client-side highest because
#: the publisher-curated partner mix competes directly; server-side lowest).
#: The spread is wide on purpose: an external observer only sees the *winning*
#: bid of a server-side internal auction (a max over several draws), so the
#: underlying per-bid level must be substantially lower for the observed
#: client-side prices to come out on top, as the paper reports.
FACET_PRICE_MULTIPLIERS: Mapping[HBFacet, float] = {
    HBFacet.CLIENT_SIDE: 3.00,
    HBFacet.HYBRID: 1.30,
    HBFacet.SERVER_SIDE: 0.70,
}


def size_price_multiplier(size: AdSlotSize) -> float:
    """Price multiplier for a creative size.

    Sizes outside the calibrated table fall back to a gentle area-based
    scaling so that unusual publisher-defined sizes still price sensibly.
    """
    known = SIZE_PRICE_MULTIPLIERS.get(size.label)
    if known is not None:
        return known
    ratio = size.area / _DEFAULT_SIZE_REFERENCE_AREA
    return max(0.02, min(4.0, ratio**_DEFAULT_SIZE_EXPONENT))


def facet_price_multiplier(facet: HBFacet) -> float:
    """Price multiplier applied to every bid in a given HB facet."""
    return FACET_PRICE_MULTIPLIERS[facet]


def popularity_price_multiplier(popularity_rank: int, total_partners: int) -> float:
    """Attenuation of bid prices for highly popular partners (Figure 24).

    ``popularity_rank`` is 1-based (1 = most popular).  The most popular
    partners cover many sites and bid conservatively for unknown users; the
    long tail bids higher hoping to win the few users it sees.
    """
    if popularity_rank < 1:
        raise ValueError("popularity rank is 1-based")
    if total_partners < 1:
        raise ValueError("total partner count must be positive")
    position = min(popularity_rank, total_partners) / total_partners
    # Ranges from ~0.75 for the most popular partner to ~1.45 for the least.
    return 0.75 + 0.70 * position


@dataclass(frozen=True, slots=True)
class PricingModel:
    """Bundles the structural multipliers for one ecosystem configuration.

    The defaults reproduce the paper; experiments (e.g. the price ablation
    bench) can instantiate alternative models without touching partner data.
    """

    size_multipliers: Mapping[str, float] = field(
        default_factory=lambda: dict(SIZE_PRICE_MULTIPLIERS)
    )
    facet_multipliers: Mapping[HBFacet, float] = field(
        default_factory=lambda: dict(FACET_PRICE_MULTIPLIERS)
    )
    #: Multiplier applied to all bids when the browsing profile carries no
    #: history (the paper's vanilla crawler); real-user profiles would use 1.0.
    vanilla_profile_multiplier: float = 0.45

    def size_multiplier(self, size: AdSlotSize) -> float:
        known = self.size_multipliers.get(size.label)
        if known is not None:
            return known
        return size_price_multiplier(size)

    def facet_multiplier(self, facet: HBFacet) -> float:
        return self.facet_multipliers.get(facet, 1.0)

    def combined_multiplier(
        self,
        size: AdSlotSize,
        facet: HBFacet,
        *,
        popularity_rank: int = 1,
        total_partners: int = 1,
        vanilla_profile: bool = True,
    ) -> float:
        """The full multiplier a partner applies on top of its base CPM."""
        multiplier = self.size_multiplier(size) * self.facet_multiplier(facet)
        multiplier *= popularity_price_multiplier(popularity_rank, total_partners)
        if vanilla_profile:
            multiplier *= self.vanilla_profile_multiplier
        return multiplier
