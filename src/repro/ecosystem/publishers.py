"""Publisher (website) population generation.

A :class:`Publisher` is one website in the simulated Web: its domain, ranking
position, whether it deploys header bidding and with which facet, wrapper
library, partner mix, ad-slot inventory and timeout configuration.  The
generator is calibrated so that the population-level statistics reproduce the
shapes reported by the paper (adoption by rank tier, facet breakdown, partner
counts and combinations, slot counts, misconfiguration rate).

Facet and partner mix are generated *jointly*, because they are entangled in
the real ecosystem: a server-side deployment exposes exactly one visible
demand partner (the aggregation endpoint, usually DFP), while client-side and
hybrid deployments expose the full partner mix the publisher configured.  The
paper's Figure 9 (>50% of sites show a single partner) and Figure 10 (DFP
alone on 48% of sites) are consequences of this entanglement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.models import AdSlot, AdSlotSize, HBFacet, WrapperKind, STANDARD_SIZES
from repro.ecosystem.partners import DemandPartner
from repro.ecosystem.registry import PartnerRegistry, default_registry
from repro.utils.rng import derive_rng

__all__ = [
    "PopulationConfig",
    "Publisher",
    "PublisherPopulation",
    "generate_population",
]


# Popularity weights of creative sizes per facet, calibrated to Figure 21:
# 300x250 dominates everywhere, 728x90 and 300x600 follow, and each facet has
# its own long tail of secondary sizes.
_SIZE_WEIGHTS: dict[HBFacet, dict[str, float]] = {
    HBFacet.SERVER_SIDE: {
        "300x250": 40.0, "728x90": 18.0, "300x600": 9.0, "320x50": 7.0,
        "970x250": 5.5, "160x600": 5.0, "336x280": 4.0, "970x90": 3.0,
        "320x100": 2.5, "468x60": 2.0,
    },
    HBFacet.CLIENT_SIDE: {
        "300x250": 34.0, "300x600": 14.0, "728x90": 13.0, "970x250": 7.0,
        "320x320": 5.0, "320x50": 5.0, "160x600": 4.5, "100x200": 3.0,
        "120x600": 2.5, "320x100": 2.0,
    },
    HBFacet.HYBRID: {
        "300x250": 37.0, "728x90": 16.0, "300x600": 10.0, "320x50": 7.0,
        "970x250": 5.0, "160x600": 4.5, "320x100": 3.5, "336x280": 3.0,
        "300x50": 2.5, "120x600": 2.0,
    },
}

_SIZE_BY_LABEL = {size.label: size for size in STANDARD_SIZES}


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs controlling publisher population generation.

    The defaults reproduce the paper's Feb'19 crawl of the top-35k Alexa list.
    ``total_sites`` can be scaled down for tests; all proportions are kept.
    """

    total_sites: int = 35_000
    seed: int = 2019

    #: HB adoption probability per rank tier: (max_rank_exclusive, probability).
    #: Calibrated to §3.2: 20-23% in the top 5k, 12-17% for 5k-15k, 10-12% rest,
    #: giving ~14.3% overall.
    adoption_tiers: tuple[tuple[int, float], ...] = (
        (5_000, 0.215),
        (15_000, 0.145),
        (10**9, 0.115),
    )

    #: Facet mix among HB sites (§4.6): server-side 48%, hybrid 34.7%,
    #: client-side 17.3%.
    facet_shares: tuple[tuple[HBFacet, float], ...] = (
        (HBFacet.SERVER_SIDE, 0.480),
        (HBFacet.HYBRID, 0.347),
        (HBFacet.CLIENT_SIDE, 0.173),
    )

    #: Distribution of the number of *visible* demand partners for client-side
    #: and hybrid deployments (server-side always exposes exactly one).
    #: Combined with the facet mix, this reproduces Figure 9: >50% of all HB
    #: sites show one partner, ~20% show five or more, ~5% show ten or more.
    partner_count_distribution: tuple[tuple[int, float], ...] = (
        (1, 0.080), (2, 0.200), (3, 0.180), (4, 0.150), (5, 0.100), (6, 0.080),
        (7, 0.060), (8, 0.040), (9, 0.025), (10, 0.015), (11, 0.012),
        (12, 0.010), (13, 0.009), (14, 0.008), (15, 0.007), (16, 0.006),
        (17, 0.005), (18, 0.005), (19, 0.004), (20, 0.004),
    )

    #: Probability that a server-side deployment's aggregation endpoint is the
    #: DFP-style ad server (Figure 10: DFP alone accounts for ~48% of sites).
    server_side_dfp_share: float = 0.95
    #: Probability that a client-side / hybrid deployment includes DFP among
    #: its visible partners; together with the server-side share this puts DFP
    #: on ~80% of HB sites (Figure 8).
    multi_partner_dfp_share: float = 0.67

    #: Mean of the (shifted) Poisson distribution of displayable ad slots per
    #: page, per facet; Figure 19 reports medians of 2-6 depending on facet.
    slot_mean_by_facet: tuple[tuple[HBFacet, float], ...] = (
        (HBFacet.CLIENT_SIDE, 2.6),
        (HBFacet.SERVER_SIDE, 3.6),
        (HBFacet.HYBRID, 4.6),
    )
    #: Fraction of HB sites that request bids for device-specific duplicates of
    #: their slots, producing the >20-slot auctions discussed in §5.3.
    multi_device_duplicate_rate: float = 0.05
    #: Fraction of HB sites whose wrapper is misconfigured and contacts the ad
    #: server without waiting for bids (a major source of late bids, §5.2).
    misconfigured_wrapper_rate: float = 0.18

    #: Default wrapper timeout in ms, and the probability a publisher keeps it.
    default_timeout_ms: float = 3_000.0
    custom_timeout_rate: float = 0.25
    custom_timeout_range_ms: tuple[float, float] = (800.0, 6_000.0)

    #: Wrapper library mix among HB sites (prebid dominates, §3.1).  Server-side
    #: deployments lean on the aggregator-provided gpt.js tag instead.
    wrapper_shares: tuple[tuple[WrapperKind, float], ...] = (
        (WrapperKind.PREBID, 0.64),
        (WrapperKind.GPT, 0.24),
        (WrapperKind.PUBFOOD, 0.07),
        (WrapperKind.CUSTOM, 0.05),
    )

    #: Latency scaling for highly ranked sites (Figure 13: the top 500 sites
    #: show a median of ~310 ms vs ~500 ms for the rest).
    top_rank_latency_scale: float = 0.58
    top_rank_threshold: int = 500
    head_latency_scale: float = 0.72
    head_rank_threshold: int = 5_000

    def __post_init__(self) -> None:
        if self.total_sites <= 0:
            raise ConfigurationError("total_sites must be positive")
        if not self.adoption_tiers:
            raise ConfigurationError("adoption_tiers cannot be empty")
        for _, probability in self.adoption_tiers:
            if not 0.0 <= probability <= 1.0:
                raise ConfigurationError("adoption probabilities must be in [0, 1]")
        facet_total = sum(share for _, share in self.facet_shares)
        if abs(facet_total - 1.0) > 1e-6:
            raise ConfigurationError("facet shares must sum to 1")
        count_total = sum(share for _, share in self.partner_count_distribution)
        if abs(count_total - 1.0) > 0.02:
            raise ConfigurationError("partner count distribution must sum to ~1")
        if not 0.0 <= self.misconfigured_wrapper_rate <= 1.0:
            raise ConfigurationError("misconfigured_wrapper_rate must be in [0, 1]")
        if not 0.0 <= self.server_side_dfp_share <= 1.0:
            raise ConfigurationError("server_side_dfp_share must be in [0, 1]")
        if not 0.0 <= self.multi_partner_dfp_share <= 1.0:
            raise ConfigurationError("multi_partner_dfp_share must be in [0, 1]")

    def scaled(self, total_sites: int) -> "PopulationConfig":
        """A copy of this configuration with a different population size.

        Rank tiers shrink proportionally so that the adoption-by-rank shape is
        preserved at small scales used in tests and benchmarks.
        """
        scale = total_sites / self.total_sites
        tiers = tuple(
            (max(1, int(round(limit * scale))) if limit < 10**8 else limit, probability)
            for limit, probability in self.adoption_tiers
        )
        return replace(
            self,
            total_sites=total_sites,
            adoption_tiers=tiers,
            top_rank_threshold=max(1, int(round(self.top_rank_threshold * scale))),
            head_rank_threshold=max(1, int(round(self.head_rank_threshold * scale))),
        )

    def adoption_probability(self, rank: int) -> float:
        """HB adoption probability for a site at 1-based rank ``rank``."""
        for limit, probability in self.adoption_tiers:
            if rank <= limit:
                return probability
        return self.adoption_tiers[-1][1]


@dataclass(frozen=True)
class Publisher:
    """One website in the simulated Web, with its full HB configuration.

    For server-side deployments ``partners`` holds the single visible
    aggregation endpoint; for client-side deployments ``ad_server`` is ``None``
    because the publisher operates their own ad server, which an external
    observer cannot attribute to any known ad-tech company.
    """

    domain: str
    rank: int
    uses_hb: bool
    facet: HBFacet | None = None
    wrapper: WrapperKind | None = None
    partners: tuple[DemandPartner, ...] = ()
    ad_server: DemandPartner | None = None
    slots: tuple[AdSlot, ...] = ()
    auctioned_slots: tuple[AdSlot, ...] = ()
    timeout_ms: float = 3_000.0
    misconfigured_wrapper: bool = False
    latency_scale: float = 1.0
    category: str = "general"

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ConfigurationError("publisher rank is 1-based")
        if self.uses_hb:
            if self.facet is None or self.wrapper is None:
                raise ConfigurationError(f"HB publisher {self.domain} needs a facet and wrapper")
            if not self.partners:
                raise ConfigurationError(f"HB publisher {self.domain} needs at least one partner")
            if not self.slots:
                raise ConfigurationError(f"HB publisher {self.domain} needs at least one ad slot")
            if self.facet is HBFacet.SERVER_SIDE and len(self.partners) != 1:
                raise ConfigurationError(
                    f"server-side publisher {self.domain} must expose exactly one partner"
                )
            if not self.auctioned_slots:
                object.__setattr__(self, "auctioned_slots", self.slots)
        if self.timeout_ms <= 0:
            raise ConfigurationError("wrapper timeout must be positive")
        if self.latency_scale <= 0:
            raise ConfigurationError("latency scale must be positive")

    @property
    def url(self) -> str:
        return f"https://{self.domain}/"

    @property
    def partner_names(self) -> tuple[str, ...]:
        return tuple(partner.name for partner in self.partners)

    @property
    def n_partners(self) -> int:
        return len(self.partners)

    @property
    def n_display_slots(self) -> int:
        return len(self.slots)

    @property
    def n_auctioned_slots(self) -> int:
        return len(self.auctioned_slots)

    @property
    def own_ad_server_host(self) -> str:
        """Host of the publisher-operated ad server (client-side facet)."""
        return f"ads.{self.domain}"


class PublisherPopulation:
    """The full set of generated publishers, addressable by domain or rank."""

    def __init__(self, publishers: Sequence[Publisher], config: PopulationConfig,
                 registry: PartnerRegistry) -> None:
        self._publishers = list(publishers)
        self._by_domain = {publisher.domain: publisher for publisher in self._publishers}
        self.config = config
        self.registry = registry

    def __len__(self) -> int:
        return len(self._publishers)

    def __iter__(self) -> Iterator[Publisher]:
        return iter(self._publishers)

    def __getitem__(self, index: int) -> Publisher:
        return self._publishers[index]

    def by_domain(self, domain: str) -> Publisher:
        if domain not in self._by_domain:
            raise KeyError(f"unknown publisher domain: {domain!r}")
        return self._by_domain[domain]

    @property
    def domains(self) -> tuple[str, ...]:
        return tuple(publisher.domain for publisher in self._publishers)

    def hb_publishers(self) -> tuple[Publisher, ...]:
        return tuple(publisher for publisher in self._publishers if publisher.uses_hb)

    def adoption_rate(self) -> float:
        if not self._publishers:
            return 0.0
        return len(self.hb_publishers()) / len(self._publishers)

    def facet_counts(self) -> dict[HBFacet, int]:
        counts: dict[HBFacet, int] = {facet: 0 for facet in HBFacet}
        for publisher in self.hb_publishers():
            assert publisher.facet is not None
            counts[publisher.facet] += 1
        return counts


def _site_domain(rank: int) -> str:
    """Deterministic synthetic domain name for a ranked site."""
    return f"site-{rank:06d}.example"


def _choose_from_shares(rng: np.random.Generator, shares: Sequence[tuple[object, float]]) -> object:
    values = [value for value, _ in shares]
    weights = np.asarray([weight for _, weight in shares], dtype=float)
    weights = weights / weights.sum()
    return values[int(rng.choice(len(values), p=weights))]


def _sample_size(rng: np.random.Generator, facet: HBFacet) -> AdSlotSize:
    weights = _SIZE_WEIGHTS[facet]
    labels = list(weights)
    probabilities = np.asarray([weights[label] for label in labels], dtype=float)
    probabilities = probabilities / probabilities.sum()
    label = labels[int(rng.choice(len(labels), p=probabilities))]
    return _SIZE_BY_LABEL[label]


def _build_slots(rng: np.random.Generator, config: PopulationConfig, facet: HBFacet,
                 domain: str) -> tuple[tuple[AdSlot, ...], tuple[AdSlot, ...]]:
    """Return (display slots, auctioned slots) for one publisher page."""
    mean = dict(config.slot_mean_by_facet)[facet]
    n_slots = 1 + int(rng.poisson(max(mean - 1.0, 0.1)))
    slots = []
    for index in range(n_slots):
        primary = _sample_size(rng, facet)
        extra_sizes: tuple[AdSlotSize, ...] = ()
        if rng.random() < 0.3:
            extra_sizes = (_sample_size(rng, facet),)
        slots.append(AdSlot(code=f"div-gpt-ad-{domain}-{index}", primary_size=primary,
                            sizes=(primary, *extra_sizes)))
    auctioned = list(slots)
    if rng.random() < config.multi_device_duplicate_rate:
        # The publisher requests bids for device-specific variants of every
        # slot (desktop / tablet / phone), inflating the auctioned inventory
        # well beyond what the page can display.
        duplicates = int(rng.integers(2, 5))
        for copy_index in range(1, duplicates + 1):
            for slot in slots:
                auctioned.append(
                    AdSlot(
                        code=f"{slot.code}-device{copy_index}",
                        primary_size=_sample_size(rng, facet),
                        floor_cpm=slot.floor_cpm,
                    )
                )
    return tuple(slots), tuple(auctioned)


def _weighted_sample_without_replacement(
    rng: np.random.Generator,
    candidates: Sequence[DemandPartner],
    count: int,
) -> list[DemandPartner]:
    weights = np.asarray([p.popularity_weight for p in candidates], dtype=float)
    weights = weights / weights.sum()
    count = min(count, len(candidates))
    chosen = rng.choice(len(candidates), size=count, replace=False, p=weights)
    return [candidates[int(i)] for i in np.atleast_1d(chosen)]


def _choose_partners(
    rng: np.random.Generator,
    config: PopulationConfig,
    registry: PartnerRegistry,
    facet: HBFacet,
) -> tuple[tuple[DemandPartner, ...], DemandPartner | None]:
    """Pick the visible partner mix and the ad server for one HB publisher."""
    ad_servers = registry.ad_servers()
    dfp = ad_servers[0] if ad_servers else registry.partners[0]

    if facet is HBFacet.SERVER_SIDE:
        # A single aggregation endpoint handles everything.
        if rng.random() < config.server_side_dfp_share:
            aggregator = dfp
        else:
            capable = [p for p in registry.server_side_capable() if p is not dfp]
            aggregator = (
                _weighted_sample_without_replacement(rng, capable, 1)[0] if capable else dfp
            )
        return (aggregator,), aggregator

    n_partners = int(
        _choose_from_shares(
            rng, [(count, share) for count, share in config.partner_count_distribution]
        )
    )
    partners: list[DemandPartner] = []
    include_dfp = rng.random() < config.multi_partner_dfp_share
    if include_dfp:
        partners.append(dfp)
    candidates = [p for p in registry.partners if p is not dfp]
    needed = n_partners - len(partners)
    if needed > 0:
        partners.extend(_weighted_sample_without_replacement(rng, candidates, needed))

    # De-duplicate while preserving order (DFP first when present).
    unique: list[DemandPartner] = []
    for partner in partners:
        if partner not in unique:
            unique.append(partner)

    if facet is HBFacet.HYBRID:
        # The hybrid ad server must be able to run its own server-side auction;
        # DFP when configured, otherwise the first capable partner, otherwise DFP.
        if any(p is dfp for p in unique):
            ad_server: DemandPartner | None = dfp
        else:
            capable = [p for p in unique if p.can_run_server_side]
            ad_server = capable[0] if capable else dfp
    else:
        # Client-side publishers operate their own ad server, which outside
        # observers cannot attribute to a known company.
        ad_server = None
    return tuple(unique), ad_server


def _latency_scale(rank: int, config: PopulationConfig) -> float:
    if rank <= config.top_rank_threshold:
        return config.top_rank_latency_scale
    if rank <= config.head_rank_threshold:
        return config.head_latency_scale
    return 1.0


def _build_publisher(rank: int, config: PopulationConfig, registry: PartnerRegistry,
                     seed: int) -> Publisher:
    rng = derive_rng(seed, "publisher", rank)
    domain = _site_domain(rank)
    uses_hb = rng.random() < config.adoption_probability(rank)
    latency_scale = _latency_scale(rank, config)
    if not uses_hb:
        return Publisher(domain=domain, rank=rank, uses_hb=False, latency_scale=latency_scale)

    facet = _choose_from_shares(rng, list(config.facet_shares))
    assert isinstance(facet, HBFacet)
    partners, ad_server = _choose_partners(rng, config, registry, facet)

    if facet is HBFacet.SERVER_SIDE:
        # Server-side sites run the aggregator-provided tag (gpt.js for DFP).
        wrapper = WrapperKind.GPT if ad_server is not None and ad_server.can_serve_ads else WrapperKind.CUSTOM
    else:
        wrapper = _choose_from_shares(rng, list(config.wrapper_shares))
        assert isinstance(wrapper, WrapperKind)

    slots, auctioned = _build_slots(rng, config, facet, domain)

    timeout_ms = config.default_timeout_ms
    if rng.random() < config.custom_timeout_rate:
        low, high = config.custom_timeout_range_ms
        timeout_ms = float(rng.uniform(low, high))
    misconfigured = facet is not HBFacet.SERVER_SIDE and rng.random() < config.misconfigured_wrapper_rate

    return Publisher(
        domain=domain,
        rank=rank,
        uses_hb=True,
        facet=facet,
        wrapper=wrapper,
        partners=partners,
        ad_server=ad_server,
        slots=slots,
        auctioned_slots=auctioned,
        timeout_ms=timeout_ms,
        misconfigured_wrapper=misconfigured,
        latency_scale=latency_scale,
    )


def generate_population(
    config: PopulationConfig | None = None,
    registry: PartnerRegistry | None = None,
) -> PublisherPopulation:
    """Generate the publisher population for one experiment configuration.

    The generation is deterministic in ``config.seed``: the same configuration
    always yields the identical population.
    """
    config = config or PopulationConfig()
    registry = registry or default_registry(seed=config.seed)
    publishers = [
        _build_publisher(rank, config, registry, config.seed)
        for rank in range(1, config.total_sites + 1)
    ]
    return PublisherPopulation(publishers, config, registry)
