"""Publisher ad server model.

The ad server (DoubleClick for Publishers in most of the paper's dataset) is
the component that receives the header-bidding key-values from the wrapper,
compares them against the other sale channels (direct orders, RTB waterfall,
fallback / house ads) and decides which creative is ultimately rendered in
each slot.

The model implements the decision logic of §2.1 step 3: the highest header bid
wins if it clears the slot's floor price and beats any eligible direct order;
otherwise the ad server walks the remaining channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.models import AdSlot, SaleChannel
from repro.ecosystem.partners import DemandPartner

__all__ = ["LineItem", "AdServerDecision", "AdServer"]


@dataclass(frozen=True)
class LineItem:
    """A directly sold (non-programmatic) campaign booked in the ad server.

    Direct orders are sold at a fixed CPM for a fixed number of impressions,
    targeting the publisher's whole audience rather than an individual user.
    """

    advertiser: str
    cpm: float
    remaining_impressions: int
    eligible_sizes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.cpm < 0:
            raise ConfigurationError("direct order CPM cannot be negative")
        if self.remaining_impressions < 0:
            raise ConfigurationError("remaining impressions cannot be negative")

    def matches(self, slot: AdSlot) -> bool:
        """Whether this line item can fill the given slot."""
        if self.remaining_impressions <= 0:
            return False
        if not self.eligible_sizes:
            return True
        return any(label in self.eligible_sizes for label in slot.accepted_labels)


@dataclass(frozen=True)
class AdServerDecision:
    """The ad server's ruling for one ad slot."""

    slot_code: str
    channel: SaleChannel
    winner: str | None
    clearing_cpm: float
    response_latency_ms: float
    considered_header_bids: int = 0
    header_bid_cpm: float | None = None

    @property
    def filled(self) -> bool:
        return self.winner is not None


class AdServer:
    """Decision engine for a publisher's ad inventory.

    Parameters
    ----------
    operator:
        The demand partner operating the ad server (usually DFP).
    response_latency_median_ms / response_latency_sigma:
        Latency of the ad-server round trip observed from the browser.
    line_items:
        Direct orders currently booked.
    fallback_cpm:
        Remnant-inventory price (e.g. AdSense backfill).
    """

    def __init__(
        self,
        operator: DemandPartner,
        *,
        response_latency_median_ms: float = 90.0,
        response_latency_sigma: float = 0.4,
        line_items: Sequence[LineItem] = (),
        fallback_cpm: float = 0.01,
        fallback_fill_probability: float = 0.9,
    ) -> None:
        if response_latency_median_ms <= 0:
            raise ConfigurationError("ad server latency median must be positive")
        if not 0 <= fallback_fill_probability <= 1:
            raise ConfigurationError("fallback fill probability must be in [0, 1]")
        self.operator = operator
        self.response_latency_median_ms = response_latency_median_ms
        self.response_latency_sigma = response_latency_sigma
        self.line_items = list(line_items)
        self.fallback_cpm = fallback_cpm
        self.fallback_fill_probability = fallback_fill_probability

    def sample_latency(self, rng: np.random.Generator, scale: float = 1.0) -> float:
        """One ad-server round-trip latency in milliseconds."""
        mu = float(np.log(self.response_latency_median_ms * scale))
        return max(10.0, float(rng.lognormal(mean=mu, sigma=self.response_latency_sigma)))

    def _best_direct_order(self, slot: AdSlot) -> LineItem | None:
        eligible = [item for item in self.line_items if item.matches(slot)]
        if not eligible:
            return None
        return max(eligible, key=lambda item: item.cpm)

    def decide(
        self,
        rng: np.random.Generator,
        slot: AdSlot,
        header_bids: Mapping[str, float],
        *,
        latency_scale: float = 1.0,
    ) -> AdServerDecision:
        """Pick the winning channel and creative for one slot.

        ``header_bids`` maps bidder name to CPM for the bids that arrived in
        time and were pushed to the ad server as key-values.
        """
        latency = self.sample_latency(rng, scale=latency_scale)
        best_bidder: str | None = None
        best_cpm = 0.0
        if header_bids:
            best_bidder = max(header_bids, key=lambda name: header_bids[name])
            best_cpm = header_bids[best_bidder]

        direct = self._best_direct_order(slot)

        # Header bid wins when it clears the floor and beats the direct order.
        if best_bidder is not None and best_cpm >= slot.floor_cpm and (
            direct is None or best_cpm >= direct.cpm
        ):
            return AdServerDecision(
                slot_code=slot.code,
                channel=SaleChannel.HEADER_BIDDING,
                winner=best_bidder,
                clearing_cpm=best_cpm,
                response_latency_ms=latency,
                considered_header_bids=len(header_bids),
                header_bid_cpm=best_cpm,
            )

        # Direct order next: guaranteed price, guaranteed fill.
        if direct is not None:
            return AdServerDecision(
                slot_code=slot.code,
                channel=SaleChannel.DIRECT_ORDER,
                winner=direct.advertiser,
                clearing_cpm=direct.cpm,
                response_latency_ms=latency,
                considered_header_bids=len(header_bids),
                header_bid_cpm=best_cpm if best_bidder else None,
            )

        # Remnant / fallback channel (e.g. AdSense backfill), which fills most
        # of the time at a low price; otherwise the slot stays empty (house ad).
        if rng.random() < self.fallback_fill_probability:
            return AdServerDecision(
                slot_code=slot.code,
                channel=SaleChannel.FALLBACK,
                winner=f"{self.operator.name} backfill",
                clearing_cpm=self.fallback_cpm,
                response_latency_ms=latency,
                considered_header_bids=len(header_bids),
                header_bid_cpm=best_cpm if best_bidder else None,
            )
        return AdServerDecision(
            slot_code=slot.code,
            channel=SaleChannel.HOUSE,
            winner=None,
            clearing_cpm=0.0,
            response_latency_ms=latency,
            considered_header_bids=len(header_bids),
            header_bid_cpm=best_cpm if best_bidder else None,
        )

    def consume_direct_order(self, advertiser: str) -> None:
        """Decrement the impression budget of a direct order after a render."""
        for index, item in enumerate(self.line_items):
            if item.advertiser == advertiser and item.remaining_impressions > 0:
                self.line_items[index] = LineItem(
                    advertiser=item.advertiser,
                    cpm=item.cpm,
                    remaining_impressions=item.remaining_impressions - 1,
                    eligible_sizes=item.eligible_sizes,
                )
                return
