"""Columnar batch simulation: whole crawl shards as numpy arrays.

The reference pipeline simulates one page at a time: derive a per-visit
generator, replay the page load through the browser engine (clock, DOM
recorder, web-request log), then hand the recorded events to the detector.
PR 5 made that loop zero-churn, which leaves the per-page *fixed costs* —
``SeedSequence`` entropy mixing, generator construction, object traffic for
events nobody outside the detector ever reads — as the dominant term.

This module changes the unit of work from the page to the
:class:`~repro.crawler.engine.CrawlShard`:

* **Batch seeding.**  ``derive_rng(seed, "visit", domain, day)`` is a
  SeedSequence over two 32-bit entropy words.  :func:`_seed_states`
  replicates numpy's entropy-mixing and PCG64 state derivation as vectorized
  ``uint32``/``uint64`` array arithmetic, producing every page's initial
  ``(state, inc)`` pair in a handful of numpy operations per shard.
* **Vectorized draws for plain pages.**  Pages without header bidding and
  without waterfall ads consume a fixed, site-determined number of uniform
  draws.  :func:`_mul128_add`/:func:`_output_doubles` step all those streams
  in lockstep (the PCG64 LCG and its XSL-RR output function, elementwise),
  so an entire shard's plain pages cost a few array operations total.
* **Fused scalar simulation for ad pages.**  Waterfall and HB pages draw
  data-dependent amounts of randomness (ziggurat log-normals, rejection
  sampling), which cannot be vectorized without perturbing the stream.  For
  those, one reusable ``Generator`` is *activated* with the precomputed page
  state (a state-dict assignment, ~1.5 µs, vs ~20 µs for ``derive_rng``) and
  a fused simulator replays the facet executor's exact draw and event order
  against precompiled per-site tables (:class:`_SiteSim`), materialising
  detector observations directly instead of event objects.

Detections leave through :meth:`HBDetector.detect_from_observations`, so the
classification/reconstruction logic is shared with the reference path, and
``SiteDetection`` objects are materialised only at the sink seam.  Byte
identity of the two paths is enforced by ``tests/test_fastpath_equivalence``
and the stream-level parity of the kernels by
``tests/test_columnar_samplers``.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import TYPE_CHECKING, Callable, Sequence
from weakref import WeakKeyDictionary

import numpy as np

from repro.crawler.crawler import CrawlResult
from repro.detector.dom_inspector import DomObservations, _ObservedDomBid
from repro.detector.parameters import HBParameterSet
from repro.detector.records import SiteDetection
from repro.detector.webrequest_inspector import PartnerExchange, WebRequestObservations
from repro.hb.events import price_bucket
from repro.hb.runner import wrapper_traits
from repro.hb.waterfall import _DEFAULT_SLOT_SIZES
from repro.models import HBFacet, RequestDirection, WebRequest
from repro.utils.rng import fast_uniform, stable_hash
from repro.utils.urls import url_host

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crawler.engine import CrawlShard, WorkerContext
    from repro.detector.detector import HBDetector
    from repro.detector.partner_list import KnownPartnerList
    from repro.ecosystem.profiles import SiteProfile, SiteProfileTable
    from repro.ecosystem.publishers import Publisher
    from repro.hb.environment import AuctionEnvironment

__all__ = ["simulate_shard_columnar"]


# ---------------------------------------------------------------------------
# Vectorized PCG64 seeding and stepping
#
# Constants from numpy's SeedSequence (entropy hashing / pool mixing) and the
# PCG64 LCG multiplier.  The kernels below are asserted bit-identical to
# numpy, value and stream state both, by tests/test_columnar_samplers.py.

_INIT_A = np.uint32(0x43B0D7E5)
_MULT_A = np.uint32(0x931E8875)
_INIT_B = np.uint32(0x8B51F9DD)
_MULT_B = np.uint32(0x58F38DED)
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_MULT_HI = np.uint64(2549297995355413924)
_MULT_LO = np.uint64(4865540595714422341)
_MASK32 = np.uint64(0xFFFFFFFF)
_U32_16 = np.uint32(16)
_U64_1 = np.uint64(1)
_U64_11 = np.uint64(11)
_U64_32 = np.uint64(32)
_U64_58 = np.uint64(58)
_U64_63 = np.uint64(63)
_U64_64 = np.uint64(64)
_DOUBLE_SCALE = 2.0 ** -53

#: The per-navigation auction id: ``IdFactory`` resets with the page, so the
#: first (and only) auction of every page is always ``auction-000000``.
_AID = "auction-000000"

#: Responses without hb_* keys all extract to the same (never mutated) set.
_EMPTY_HB = HBParameterSet(global_values={}, per_slot={})


def _mul128_add(
    hi: np.ndarray, lo: np.ndarray, inc_hi: np.ndarray, inc_lo: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One PCG64 LCG step, elementwise: ``state = state * MULT + inc`` mod 2^128.

    128-bit values are carried as ``(hi, lo)`` uint64 array pairs; the
    multiply is schoolbook over 32-bit limbs so every partial product fits a
    uint64 without losing carries.
    """
    with np.errstate(over="ignore"):
        a0 = lo & _MASK32
        a1 = lo >> _U64_32
        b0 = _MULT_LO & _MASK32
        b1 = _MULT_LO >> _U64_32
        p00 = a0 * b0
        p01 = a0 * b1
        p10 = a1 * b0
        p11 = a1 * b1
        mid = (p00 >> _U64_32) + (p01 & _MASK32) + (p10 & _MASK32)
        new_lo = (p00 & _MASK32) | ((mid & _MASK32) << _U64_32)
        carry = (mid >> _U64_32) + (p01 >> _U64_32) + (p10 >> _U64_32)
        new_hi = p11 + carry + lo * _MULT_HI + hi * _MULT_LO
        new_lo2 = new_lo + inc_lo
        new_hi = new_hi + inc_hi + (new_lo2 < new_lo).astype(np.uint64)
        return new_hi, new_lo2


def _output_doubles(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """The XSL-RR output of each (post-step) state, as ``random()`` doubles."""
    with np.errstate(over="ignore"):
        x = hi ^ lo
        rot = hi >> _U64_58
        out = (x >> rot) | (x << ((_U64_64 - rot) & _U64_63))
        return (out >> _U64_11) * _DOUBLE_SCALE


def _seed_states(
    seed: int, entropy: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batch-replicate ``default_rng(SeedSequence([seed, e]))`` per entropy word.

    Returns ``(state_hi, state_lo, inc_hi, inc_lo)`` uint64 arrays holding
    each stream's post-seeding PCG64 state — exactly the state a fresh
    ``derive_rng`` generator starts from.
    """
    n = entropy.shape[0]
    with np.errstate(over="ignore"):
        words = np.zeros((4, n), dtype=np.uint32)
        words[0] = np.uint32(seed & 0xFFFFFFFF)
        words[1] = entropy
        pool = np.zeros((4, n), dtype=np.uint32)
        hashconst = np.full(n, _INIT_A, dtype=np.uint32)

        def hashed(value: np.ndarray) -> np.ndarray:
            nonlocal hashconst
            value = value ^ hashconst
            hashconst = hashconst * _MULT_A
            value = value * hashconst
            return value ^ (value >> _U32_16)

        for i in range(4):
            pool[i] = hashed(words[i])
        for src in range(4):
            for dst in range(4):
                if src != dst:
                    mixed = pool[dst] * _MIX_MULT_L - hashed(pool[src]) * _MIX_MULT_R
                    pool[dst] = mixed ^ (mixed >> _U32_16)

        out32 = np.zeros((8, n), dtype=np.uint64)
        hashconst_b = np.full(n, _INIT_B, dtype=np.uint32)
        for i in range(8):
            value = pool[i % 4] ^ hashconst_b
            hashconst_b = hashconst_b * _MULT_B
            value = value * hashconst_b
            out32[i] = value ^ (value >> _U32_16)

        val = [out32[2 * j] | (out32[2 * j + 1] << _U64_32) for j in range(4)]
        # initstate = val0:val1, initseq = val2:val3 (big-halves first);
        # inc = (initseq << 1) | 1, state = (inc + initstate) * MULT + inc.
        inc_lo = (val[3] << _U64_1) | _U64_1
        inc_hi = (val[2] << _U64_1) | (val[3] >> _U64_63)
        t_lo = val[1] + inc_lo
        t_hi = val[0] + inc_hi + (t_lo < val[1]).astype(np.uint64)
    hi, lo = _mul128_add(t_hi, t_lo, inc_hi, inc_lo)
    return hi, lo, inc_hi, inc_lo


def _visit_entropy(publishers: Sequence["Publisher"], visit_index: int) -> np.ndarray:
    """The second SeedSequence entropy word of every page's visit stream."""
    return np.fromiter(
        (stable_hash("visit", p.domain, visit_index) & 0xFFFFFFFF for p in publishers),
        dtype=np.uint32,
        count=len(publishers),
    )


# ---------------------------------------------------------------------------
# Per-site compiled simulation inputs


class _SiteSim:
    """Flat, per-site constants the fused page simulators read.

    Compiled once per ``(profile table, known-partner list, site)`` and
    cached; everything here is immutable across pages (URL hosts matched
    against the partner list, static request parameter dicts with the
    per-navigation auction id baked in, slot code/label/floor tuples, the
    wrapper's DOM-event traits).
    """

    __slots__ = (
        "publisher", "domain", "rank", "uses_hb",
        "html_fetch_ms", "content_load_ms", "n_res", "n_scr",
        # non-HB
        "wf_heads", "wf_max_levels", "latency_scale",
        # HB common
        "facet", "page_url", "library", "lifecycle", "page_event", "profile",
        "n_slots", "slot_codes", "slot_labels", "slot_floors", "slot_display",
        "queue_bias", "timeout_ms", "misconfigured",
        # internal (server/hybrid) auction pool, flattened for _sample_internal
        "internal_rec",
        # client/hybrid
        "client_recs", "push_url", "push_host", "push_partner",
        # hybrid
        "render_url", "render_host", "render_partner",
        "client_names", "client_code_set",
        # server-side
        "server_url", "server_host", "server_partner", "server_params",
    )


def _compile_sim(
    profile: "SiteProfile", publisher: "Publisher", known: "KnownPartnerList"
) -> _SiteSim:
    page = profile.page
    sim = _SiteSim()
    sim.publisher = publisher
    sim.domain = publisher.domain
    sim.rank = publisher.rank
    sim.uses_hb = publisher.uses_hb
    sim.html_fetch_ms = page.html_fetch_ms
    sim.content_load_ms = page.content_load_ms
    sim.n_res = len(profile.resource_urls)
    sim.n_scr = len(page.header_script_urls)
    sim.latency_scale = publisher.latency_scale
    if not publisher.uses_hb:
        # Baseline and waterfall traffic never carries hb_* parameters and
        # never receives a response, so nothing a non-HB page emits can move
        # the detector off its "no evidence" verdict: only the page-load
        # clock needs simulating.  The chain-construction inputs are
        # flattened per head size: (profiles, popularity weights,
        # probability list, cdf list, head length), in popularity order.
        wf = profile.waterfall
        sim.wf_max_levels = wf.max_levels
        flats: dict[str, tuple] = {
            name: (
                _flat_latency(wprof.latency),
                wprof.fill_probability,
                wprof.cpm_sigma,
                wprof.cpm_mu_by_label,
            )
            for name, wprof in wf.profiles.items()
        }
        sim.wf_heads = tuple(
            (
                tuple(flats[partner.name] for partner in head),
                tuple(partner.popularity_weight for partner in head),
                probabilities.tolist(),
                cdf.tolist(),
                len(head),
            )
            for head, probabilities, cdf in wf.heads
        )
        return sim

    match = known.match_host
    sim.facet = publisher.facet
    sim.page_url = publisher.url
    sim.profile = profile
    sim.library, sim.lifecycle = wrapper_traits(publisher)
    page_host = url_host(page.url)
    page_partner = match(page_host)
    sim.page_event = (page.url, page_host, page_partner) if page_partner is not None else None

    slots = publisher.auctioned_slots
    display = profile.display_codes
    sim.n_slots = len(slots)
    sim.slot_codes = tuple(slot.code for slot in slots)
    sim.slot_labels = tuple(slot.primary_size.label for slot in slots)
    sim.slot_floors = tuple(slot.floor_cpm for slot in slots)
    sim.slot_display = tuple(slot.code in display for slot in slots)
    sim.queue_bias = 4.0 * len(slots)
    sim.timeout_ms = publisher.timeout_ms
    sim.misconfigured = publisher.misconfigured_wrapper

    low, high = profile.internal_pool
    sim.internal_rec = (
        low,
        high,
        tuple(
            (internal.bidder_code, internal.partner.name, _flat_respond(internal))
            for internal in profile.internal_profiles
        ),
        profile.internal_weights.tolist() if profile.internal_weights is not None else None,
        profile.internal_cdf.tolist() if profile.internal_cdf is not None else None,
    )

    if publisher.facet is HBFacet.SERVER_SIDE:
        url = profile.server_request_url
        params = dict(profile.server_request_params)
        params["correlator"] = _AID
        host = url_host(url)
        sim.server_url = url
        sim.server_host = host
        sim.server_partner = match(host)
        sim.server_params = params
        return sim

    if publisher.facet is HBFacet.CLIENT_SIDE:
        dispatch_profiles = profile.partner_profiles
    else:
        dispatch_profiles = profile.client_partner_profiles
    recs = []
    for prof, (url, template) in zip(dispatch_profiles, profile.bid_request_templates):
        params = dict(template)
        params["auction_id"] = _AID
        host = url_host(url)
        recs.append((prof.bidder_code, _flat_respond(prof), url, host, match(host), params))
    sim.client_recs = tuple(recs)

    push_url = profile.ad_server_push_url
    push_host = url_host(push_url)
    sim.push_url = push_url
    sim.push_host = push_host
    sim.push_partner = match(push_host)

    if publisher.facet is HBFacet.HYBRID:
        render_url = profile.hybrid_render_url
        render_host = url_host(render_url)
        sim.render_url = render_url
        sim.render_host = render_host
        sim.render_partner = match(render_host)
        client_bidders = profile.client_bidders_by_code or {}
        sim.client_names = {code: partner.name for code, partner in client_bidders.items()}
        sim.client_code_set = frozenset(client_bidders)
    return sim


#: Compiled sims per profile table; rebuilt wholesale if the worker's
#: known-partner list changes (one list per detector, shared by clones).
_SIM_CACHE: "WeakKeyDictionary[SiteProfileTable, tuple[object, dict]]" = WeakKeyDictionary()
_SIM_LOCK = threading.Lock()


def _sims_for(
    table: "SiteProfileTable",
    known: "KnownPartnerList",
    publishers: Sequence["Publisher"],
) -> list[_SiteSim]:
    entry = _SIM_CACHE.get(table)
    if entry is None or entry[0] is not known:
        entry = (known, {})
        with _SIM_LOCK:
            _SIM_CACHE[table] = entry
    cache: dict[str, _SiteSim] = entry[1]
    sims: list[_SiteSim] = []
    fresh: list[tuple[str, _SiteSim]] = []
    for publisher in publishers:
        sim = cache.get(publisher.domain)
        if sim is not None and (sim.publisher is publisher or sim.publisher == publisher):
            sims.append(sim)
            continue
        sim = _compile_sim(table.profile_for(publisher), publisher, known)
        fresh.append((publisher.domain, sim))
        sims.append(sim)
    if fresh:
        with _SIM_LOCK:
            if len(cache) >= table.max_sites:
                cache.clear()
            for domain, sim in fresh:
                cache[domain] = sim
    return sims


# ---------------------------------------------------------------------------
# Fused page simulators


#: Slot-size labels a non-HB page draws from, in draw-index order.
_WF_LABELS = tuple(size.label for size in _DEFAULT_SLOT_SIZES)


def _chain_popularity(entry: tuple) -> float:
    return entry[1]


def _simulate_waterfall_page(sim: _SiteSim, gen: np.random.Generator) -> float:
    """A non-HB page that serves waterfall ads; returns the load-event time.

    The RNG gate has already been consumed (vectorized); the generator is
    activated with the post-gate stream state.  Replicates, draw for draw,
    ``build_waterfall_chain_fast`` + per-slot ``default_waterfall_slot`` /
    ``run_waterfall`` over the compiled samplers, without materialising the
    chain/slot/outcome objects nobody reads: waterfall traffic is invisible
    to the detector (the win notification is an outgoing request without
    hb_* keys), so only the clock contribution matters.
    """
    t = sim.html_fetch_ms
    n_slots = int(gen.integers(1, 4))
    n_levels = int(gen.integers(1, sim.wf_max_levels + 1))
    profiles, popularity, p_list, cdf_list, head_len = sim.wf_heads[n_levels - 1]
    chosen_idx = _swr(gen, p_list, cdf_list, min(n_levels, head_len))
    chain = [(profiles[i], popularity[i]) for i in chosen_idx]
    chain.sort(key=_chain_popularity, reverse=True)
    # Floors are drawn in priority order, after the popularity sort.
    chain = [(profile, fast_uniform(gen, 0.02, 0.12)) for profile, _ in chain]
    gen_random = gen.random
    gen_lognormal = gen.lognormal
    for _ in range(n_slots):
        label = _WF_LABELS[int(gen.integers(0, len(_WF_LABELS)))]
        total = 0.0
        won = False
        for (latency_flat, fill_probability, cpm_sigma, mu_by_label), floor_cpm in chain:
            # _sample_latency, inlined with bound methods: this loop is the
            # single hottest stretch of the columnar path.
            mu, sigma, minimum, slow_probability, slow_multiplier = latency_flat
            value = float(gen_lognormal(mu, sigma))
            if slow_probability and gen_random() < slow_probability:
                value *= slow_multiplier
            total += value if value > minimum else minimum
            if gen_random() > fill_probability:
                continue
            drawn = float(gen_lognormal(mu_by_label[label], cpm_sigma))
            if round(max(drawn, 0.0001), 5) >= floor_cpm:
                won = True
                break
        if not won:
            total += fast_uniform(gen, 40.0, 120.0)
            fast_uniform(gen, 0.005, 0.02)  # backfill clearing price; unobserved
        t += total * 0.25
    for value in (5.0 + 35.0 * gen.random(sim.n_res)).tolist():
        t += value
    for value in (3.0 + 17.0 * gen.random(sim.n_scr)).tolist():
        t += value
    return float(t + sim.content_load_ms)


def _swr(gen, p_list: list, cdf_list: list, size: int) -> list:
    """Pure-Python ``sample_without_replacement``.

    Stream consumption is identical — the only RNG calls are the same
    batched ``gen.random(k)`` draws — and every float operation repeats the
    numpy original in the same IEEE order: ``bisect_right`` is
    ``searchsorted(side="right")``, the per-batch first-occurrence dedup is
    ``np.unique``'s sorted-index take, the redraw loop's running sum and
    elementwise division are ``np.cumsum`` (sequential for float64) and
    ``/= cdf[-1]``.  The popularity-skewed heads collide often, so the
    redraw loop is hot too; keeping both halves allocation-free beats the
    array version on these tiny pools.
    """
    chosen = [bisect_right(cdf_list, x) for x in gen.random(size).tolist()]
    if size == 1:
        return chosen
    seen = set()
    uniq = []
    for value in chosen:
        if value not in seen:
            seen.add(value)
            uniq.append(value)
    if len(uniq) == size:
        return chosen
    weights = list(p_list)
    while len(uniq) < size:
        draws = gen.random(size - len(uniq)).tolist()
        for index in uniq:
            weights[index] = 0.0
        total = 0.0
        cdf = []
        for weight in weights:
            total += weight
            cdf.append(total)
        cdf = [value / total for value in cdf]
        batch_seen = set()
        for value in [bisect_right(cdf, x) for x in draws]:
            if value not in batch_seen:
                batch_seen.add(value)
                uniq.append(value)
    return uniq


def _sample_internal(gen, rec) -> list:
    """``SiteProfile.sample_internal_bidders`` over the flattened pool.

    Same RNG order (count draw, then the weighted choice); returns
    ``(bidder_code, partner_name, respond_flat)`` triples instead of
    ``PartnerProfile`` objects.
    """
    low, high, recs, p_list, cdf_list = rec
    count = int(gen.integers(low, high + 1))
    if not recs:
        return []
    count = min(count, len(recs))
    return [recs[i] for i in _swr(gen, p_list, cdf_list, count)]


def _flat_latency(draw) -> tuple:
    """``LatencyDraw`` constants as a tuple, for attribute-free sampling."""
    return (draw.mu, draw.sigma, draw.minimum_ms, draw.slow_probability, draw.slow_multiplier)


def _flat_respond(prof) -> tuple:
    """``PartnerProfile`` constants for :func:`_respond_draws`."""
    return (
        _flat_latency(prof.latency),
        _flat_latency(prof.internal) if prof.internal is not None else None,
        prof.bid_probability,
        prof.cpm_sigma,
        prof.cpm_mus,
    )


def _respond_draws(
    gen: np.random.Generator, flat: tuple, slot_index: int
) -> tuple[float, float | None]:
    """The draw sequence of ``PartnerProfile.respond`` without the response
    object; the latency sampling is :func:`_sample_latency` inlined."""
    latency_flat, internal_flat, bid_probability, cpm_sigma, cpm_mus = flat
    mu, sigma, minimum, slow_probability, slow_multiplier = latency_flat
    value = float(gen.lognormal(mu, sigma))
    if slow_probability and gen.random() < slow_probability:
        value *= slow_multiplier
    latency = value if value > minimum else minimum
    if internal_flat is not None:
        mu, sigma, minimum, slow_probability, slow_multiplier = internal_flat
        value = float(gen.lognormal(mu, sigma))
        if slow_probability and gen.random() < slow_probability:
            value *= slow_multiplier
        latency += value if value > minimum else minimum
    cpm = None
    if gen.random() < bid_probability:
        drawn = float(gen.lognormal(cpm_mus[slot_index], cpm_sigma))
        cpm = round(max(drawn, 0.0001), 5)
    return latency, cpm


def _simulate_hb_page(
    sim: _SiteSim,
    gen: np.random.Generator,
    detector: "HBDetector",
    crawl_day: int,
) -> tuple[SiteDetection, float]:
    """One header-bidding page, fused: facet executor + inspectors in one pass.

    Replicates the reference executors' draw order, event order and
    timestamps exactly, but builds the detector's observation records
    directly.  Web requests are carried as light tuples
    ``(ts, direction, host, partner, params, url, carries_hb, is_win, hb)``
    where ``hb`` is the request's ``HBParameterSet``, built alongside the
    parameter dict instead of being re-parsed out of it; only the captured
    ad-server push materialises a real ``WebRequest`` (the detector keeps a
    reference to it).
    """
    facet = sim.facet
    lifecycle = sim.lifecycle
    codes = sim.slot_codes
    labels = sim.slot_labels
    slots_n = sim.n_slots
    profile = sim.profile
    events: list[tuple] = []
    if sim.page_event is not None:
        url, host, partner = sim.page_event
        events.append((0.0, 0, host, partner, {}, url, False, False, None))

    start = sim.html_fetch_ms
    dom = DomObservations()
    dom_bids: list[_ObservedDomBid] = []

    if facet is HBFacet.SERVER_SIDE:
        # One outgoing request, one hb-parameterised response per slot, then
        # render events (which are not HB proof: the DOM channel stays dark).
        events.append(
            (start, 0, sim.server_host, sim.server_partner, sim.server_params,
             sim.server_url, False, False, None)
        )
        round_trip = profile.aggregator_latency.sample(gen)
        round_trip += profile.aggregator_internal.sample(gen)
        internal_bidders = _sample_internal(gen, sim.internal_rec)
        response_time = start + round_trip
        winner_names: list[str | None] = []
        for slot_index in range(slots_n):
            best = None
            best_cpm = 0.0
            for bidder in internal_bidders:
                _, cpm = _respond_draws(gen, bidder[2], slot_index)
                if cpm is not None and (best is None or cpm > best_cpm):
                    best, best_cpm = bidder, cpm
            params: dict[str, str] = {"correlator": _AID, "slot": codes[slot_index]}
            hbset = _EMPTY_HB
            if best is not None:
                hb_globals = {
                    "hb_bidder": best[0],
                    "hb_pb": price_bucket(best_cpm),
                    "hb_size": labels[slot_index],
                    "hb_source": "s2s",
                }
                params.update(hb_globals)
                hbset = HBParameterSet(global_values=hb_globals, per_slot={})
            events.append(
                (response_time, 1, sim.server_host, sim.server_partner, params,
                 sim.server_url, False, False, hbset)
            )
            winner_names.append(best[1] if best is not None else None)
        t = response_time
        for slot_index in range(slots_n):
            if not sim.slot_display[slot_index]:
                continue
            t += fast_uniform(gen, 20.0, 120.0)
            name = winner_names[slot_index]
            dom.rendered_slots[codes[slot_index]] = name if name else None
    else:
        # Client-side dispatch, shared by the client and hybrid facets.
        cursor = start
        replies = []
        for rec in sim.client_recs:
            cursor += (fast_uniform(gen, 15.0, 45.0) + sim.queue_bias) * sim.latency_scale
            events.append((cursor, 0, rec[3], rec[4], rec[5], rec[2], False, False, None))
            flat = rec[1]
            first_latency = None
            cpms = []
            for slot_index in range(slots_n):
                latency, cpm = _respond_draws(gen, flat, slot_index)
                cpms.append(cpm)
                if first_latency is None:
                    first_latency = latency
            replies.append((rec, cursor, cursor + (first_latency or 0.0), cpms))

        if sim.misconfigured:
            call = start + float(gen.uniform(100.0, 400.0))
        else:
            deadline = start + sim.timeout_ms
            slowest = start
            for reply in replies:
                if reply[2] > slowest:
                    slowest = reply[2]
            call = min(deadline, slowest) + float(gen.uniform(5.0, 25.0))

        on_time: list[dict[str, float]] = [dict() for _ in range(slots_n)]
        timed_out: list[str] = []
        for rec, dispatched, responded, cpms in replies:
            code = rec[0]
            response_params: dict[str, str] = {"bidder": code}
            reply_slots: dict[str, dict[str, str]] = {}
            for slot_index, cpm in enumerate(cpms):
                if cpm is None:
                    continue
                slot_code = codes[slot_index]
                cpm_text = f"{cpm:.5f}"
                response_params[f"hb_cpm_{slot_code}"] = cpm_text
                response_params[f"hb_size_{slot_code}"] = labels[slot_index]
                reply_slots[slot_code] = {"hb_cpm": cpm_text, "hb_size": labels[slot_index]}
            hbset = (
                HBParameterSet(global_values={}, per_slot=reply_slots)
                if reply_slots else _EMPTY_HB
            )
            events.append(
                (responded, 1, rec[3], rec[4], response_params, rec[2], False, False, hbset)
            )
            if responded > call:
                timed_out.append(code)
                continue
            time_to_respond = float(round(responded - dispatched, 1))
            for slot_index, cpm in enumerate(cpms):
                if cpm is None:
                    continue
                on_time[slot_index][code] = cpm
                if lifecycle:
                    dom_bids.append(_ObservedDomBid(
                        bidder_code=code,
                        slot_code=codes[slot_index],
                        cpm=float(round(cpm, 5)),
                        size=labels[slot_index],
                        time_to_respond_ms=time_to_respond,
                        won=False,
                        timestamp_ms=start,
                    ))

        push_params: dict[str, str] = {"auction_id": _AID, "slots": str(slots_n)}
        push_slots: dict[str, dict[str, str]] = {}
        any_filled = False
        for slot_index in range(slots_n):
            bids = on_time[slot_index]
            if not bids:
                continue
            any_filled = True
            best_code = None
            best_cpm = None
            for code, cpm in bids.items():
                if best_cpm is None or cpm > best_cpm:
                    best_code, best_cpm = code, cpm
            slot_code = codes[slot_index]
            bucket = price_bucket(best_cpm)
            push_params[f"hb_bidder_{slot_code}"] = best_code
            push_params[f"hb_pb_{slot_code}"] = bucket
            push_params[f"hb_size_{slot_code}"] = labels[slot_index]
            push_slots[slot_code] = {
                "hb_bidder": best_code, "hb_pb": bucket, "hb_size": labels[slot_index],
            }
        events.append(
            (call, 0, sim.push_host, sim.push_partner, push_params, sim.push_url,
             any_filled, False, HBParameterSet(global_values={}, per_slot=push_slots))
        )
        base_response = call + profile.ad_server_latency(gen)
        events.append(
            (base_response, 1, sim.push_host, sim.push_partner,
             {"auction_id": _AID, "status": "filled"}, sim.push_url, False, False,
             _EMPTY_HB)
        )

        dom.hb_events_seen = True
        dom.library = sim.library
        dom.auction_ended_at_ms = call
        if lifecycle:
            dom.auction_ids.append(_AID)
            dom.auction_started_at_ms = start
            if timed_out:
                dom.timed_out_bidders = timed_out
        else:
            # The non-lifecycle wrappers still fire auctionEnd; the inspector
            # back-derives the start from its rounded duration payload.
            dom.auction_started_at_ms = call - round(call - start, 1)

        if facet is HBFacet.CLIENT_SIDE:
            winners: list[tuple[str | None, float]] = []
            for slot_index in range(slots_n):
                best_code = None
                best_cpm = None
                for code, cpm in on_time[slot_index].items():
                    if best_cpm is None or cpm > best_cpm:
                        best_code, best_cpm = code, cpm
                if best_code is None or best_cpm < sim.slot_floors[slot_index]:
                    winners.append((None, 0.0))
                else:
                    winners.append((best_code, best_cpm))
            t = base_response
            for slot_index in range(slots_n):
                if not sim.slot_display[slot_index]:
                    continue
                t += fast_uniform(gen, 30.0, 150.0)
                winner_code, cpm = winners[slot_index]
                if winner_code is not None and gen.random() < 0.985:
                    dom_bids.append(_ObservedDomBid(
                        bidder_code=winner_code,
                        slot_code=codes[slot_index],
                        cpm=float(round(cpm, 5)),
                        size=labels[slot_index],
                        time_to_respond_ms=None,
                        won=True,
                        timestamp_ms=t,
                    ))
                    dom.rendered_slots[codes[slot_index]] = winner_code
                    # The win notification is an outgoing request to an
                    # already-contacted partner host: invisible to detection.
                elif winner_code is not None:
                    dom.failed_slots.append(codes[slot_index])
                else:
                    dom.rendered_slots[codes[slot_index]] = None
        else:  # HYBRID
            ad_response = base_response + profile.hybrid_internal_delay.sample(gen)
            internal_bidders = _sample_internal(gen, sim.internal_rec)
            winners_by_code: dict[str, tuple[str | None, float]] = {}
            names_by_code: dict[str, str | None] = {}
            for slot_index in range(slots_n):
                best_client_code = None
                best_client_cpm = 0.0
                for code, cpm in on_time[slot_index].items():
                    if cpm > best_client_cpm:
                        best_client_code, best_client_cpm = code, cpm
                best_internal = None
                best_internal_cpm = 0.0
                for bidder in internal_bidders:
                    _, cpm = _respond_draws(gen, bidder[2], slot_index)
                    if cpm is not None and (best_internal is None or cpm > best_internal_cpm):
                        best_internal, best_internal_cpm = bidder, cpm
                winner_name = None
                winner_code = None
                clearing = 0.0
                if best_client_code is not None and (
                    best_internal is None or best_client_cpm >= best_internal_cpm
                ):
                    winner_code = best_client_code
                    winner_name = sim.client_names[best_client_code]
                    clearing = best_client_cpm
                elif best_internal is not None:
                    winner_name = best_internal[1]
                    winner_code = best_internal[0]
                    clearing = best_internal_cpm
                params = {"correlator": _AID, "slot": codes[slot_index]}
                hbset = _EMPTY_HB
                if winner_code is not None:
                    hb_globals = {
                        "hb_bidder": winner_code,
                        "hb_pb": price_bucket(clearing),
                        "hb_size": labels[slot_index],
                        "hb_source": "hybrid",
                    }
                    params.update(hb_globals)
                    hbset = HBParameterSet(global_values=hb_globals, per_slot={})
                events.append(
                    (ad_response, 1, sim.render_host, sim.render_partner, params,
                     sim.render_url, False, False, hbset)
                )
                winners_by_code[codes[slot_index]] = (winner_code, clearing)
                names_by_code[codes[slot_index]] = winner_name
            client_map = {
                code: value
                for code, value in winners_by_code.items()
                if value[0] in sim.client_code_set
            }
            t = ad_response
            for slot_index in range(slots_n):
                if not sim.slot_display[slot_index]:
                    continue
                t += fast_uniform(gen, 30.0, 150.0)
                winner_code, cpm = client_map.get(codes[slot_index], (None, 0.0))
                if winner_code is not None and gen.random() < 0.985:
                    dom_bids.append(_ObservedDomBid(
                        bidder_code=winner_code,
                        slot_code=codes[slot_index],
                        cpm=float(round(cpm, 5)),
                        size=labels[slot_index],
                        time_to_respond_ms=None,
                        won=True,
                        timestamp_ms=t,
                    ))
                    dom.rendered_slots[codes[slot_index]] = winner_code
                elif winner_code is not None:
                    dom.failed_slots.append(codes[slot_index])
                else:
                    dom.rendered_slots[codes[slot_index]] = None
            for slot_index in range(slots_n):
                code = codes[slot_index]
                if sim.slot_display[slot_index] and code not in client_map:
                    t += fast_uniform(gen, 20.0, 100.0)
                    name = names_by_code[code]
                    dom.rendered_slots[code] = name if name else None

    dom.bids = dom_bids

    # Baseline resources and header scripts: outgoing-only traffic after the
    # last response of the page; cannot affect detection, only the clock.
    # Fixed counts, so one batched draw replaces the per-dwell scalar calls
    # (elementwise scaling and sequential adds keep the floats bit-exact).
    for value in (5.0 + 35.0 * gen.random(sim.n_res)).tolist():
        t += value
    for value in (3.0 + 17.0 * gen.random(sim.n_scr)).tolist():
        t += value
    t += sim.content_load_ms
    load_event = float(t)

    # Replicated WebRequestInspector over the light event tuples, in the
    # reference's (timestamp, direction) stable order.
    events.sort(key=_event_key)
    web = WebRequestObservations()
    pending: dict[str, tuple[str, float, dict]] = {}
    push_host: str | None = None
    push_ts = 0.0
    for ts, direction, host, partner, params, url, carries_hb, is_win, hb_params in events:
        if direction == 0:
            if carries_hb and not is_win and web.ad_server_push is None:
                web.ad_server_push = WebRequest(
                    url=url,
                    method="GET",
                    direction=RequestDirection.OUTGOING,
                    timestamp_ms=ts,
                    initiator=sim.page_url,
                    params=params,
                )
                web.ad_server_push_params = hb_params
                web.ad_server_is_known_partner = partner is not None
                web.ad_server_partner = partner
                push_host = host
                push_ts = ts
                continue
            if partner is None:
                continue
            if web.first_partner_request_at_ms is None:
                web.first_partner_request_at_ms = ts
            if host not in pending:
                pending[host] = (partner, ts, params)
        else:
            if (
                push_host is not None
                and host == push_host
                and ts >= push_ts
                and web.ad_server_response_at_ms is None
            ):
                web.ad_server_response_at_ms = ts
            if partner is None:
                continue
            if not hb_params.is_empty:
                web.hb_responses.append((partner, ts, hb_params))
            outgoing = pending.pop(host, None)
            if outgoing is not None:
                web.exchanges.append(PartnerExchange(
                    partner=outgoing[0],
                    host=host,
                    request_at_ms=outgoing[1],
                    response_at_ms=ts,
                    request_params=dict(outgoing[2]),
                    response_params=dict(params),
                    response_hb_params=hb_params,
                ))
            else:
                web.exchanges.append(PartnerExchange(
                    partner=partner,
                    host=host,
                    request_at_ms=None,
                    response_at_ms=ts,
                    request_params={},
                    response_params=dict(params),
                    response_hb_params=hb_params,
                ))

    detection = detector.detect_from_observations(
        domain=sim.domain,
        rank=sim.rank,
        dom=dom,
        web=web,
        crawl_day=crawl_day,
        page_load_ms=load_event,
    )
    return detection, load_event


def _event_key(event: tuple) -> tuple[float, int]:
    return (event[0], event[1])


# ---------------------------------------------------------------------------
# Shard entry point


def simulate_shard_columnar(
    context: "WorkerContext",
    crawl_day: int,
    on_detection: "Callable[[SiteDetection], None] | None",
    shard: "CrawlShard",
) -> CrawlResult:
    """Simulate one shard columnar-batch style; byte-identical to ``_crawl_shard``.

    Seeds every page's stream in one vectorized pass, draws all plain-page
    dwell times as shard-wide array operations, and runs ad pages through the
    fused scalar simulators on a single reusable generator.  Session
    bookkeeping (``sessions_started``, restarts, timeout kills) replicates
    the reference loop's counters exactly.
    """
    config = context.config
    detector = context.detector
    browser = context.browser
    table = context.profiles
    detector.reset()
    result = CrawlResult()
    publishers = shard.publishers
    n = len(publishers)
    if n == 0:
        return result

    table.precompile(publishers)
    sims = _sims_for(table, detector.known_partners, publishers)

    state_hi, state_lo, inc_hi, inc_lo = _seed_states(
        config.seed, _visit_entropy(publishers, crawl_day)
    )
    # Every page's first draw: the waterfall gate for non-HB pages.
    hi1, lo1 = _mul128_add(state_hi, state_lo, inc_hi, inc_lo)
    first_draw = _output_doubles(hi1, lo1)

    gate_probability = browser.non_hb_ad_probability
    timeout_ms = browser.page_load_timeout_ms

    html = np.empty(n)
    content = np.empty(n)
    n_res = np.empty(n, dtype=np.int64)
    n_scr = np.empty(n, dtype=np.int64)
    uses_hb = np.empty(n, dtype=bool)
    for i, sim in enumerate(sims):
        html[i] = sim.html_fetch_ms
        content[i] = sim.content_load_ms
        n_res[i] = sim.n_res
        n_scr[i] = sim.n_scr
        uses_hb[i] = sim.uses_hb

    # Plain pages (no HB, gate declined the waterfall) consume a fixed
    # number of uniforms: step every stream in lockstep, masking lanes that
    # have already finished.  The masked adds replicate the reference
    # clock's sequential float accumulation exactly.
    plain = (~uses_hb) & (first_draw > gate_probability)
    load_plain = None
    if plain.any():
        totals = n_res + n_scr
        t_arr = html.copy()
        cur_hi, cur_lo = hi1, lo1
        for k in range(int(totals[plain].max())):
            cur_hi, cur_lo = _mul128_add(cur_hi, cur_lo, inc_hi, inc_lo)
            u = _output_doubles(cur_hi, cur_lo)
            value = np.where(k < n_res, 5.0 + 35.0 * u, 3.0 + 17.0 * u)
            t_arr = np.where(plain & (k < totals), t_arr + value, t_arr)
        load_plain = t_arr + content

    # One reusable generator, re-activated per ad page with the precomputed
    # stream state (initial state for HB pages, post-gate for waterfall).
    gen = np.random.Generator(np.random.PCG64(0))
    bit_generator = gen.bit_generator
    state_template: dict = {
        "bit_generator": "PCG64",
        "state": {"state": 0, "inc": 0},
        "has_uint32": 0,
        "uinteger": 0,
    }
    inner_state = state_template["state"]

    # Bulk-convert the state arrays to Python ints once; per-page
    # ``int(arr[i])`` item getters dominate the loop otherwise.
    state_hi_l = state_hi.tolist()
    state_lo_l = state_lo.tolist()
    inc_hi_l = inc_hi.tolist()
    inc_lo_l = inc_lo.tolist()
    hi1_l = hi1.tolist()
    lo1_l = lo1.tolist()
    plain_l = plain.tolist()
    load_plain_l = load_plain.tolist() if load_plain is not None else None

    restart_every = config.restart_every_pages
    session_alive = False
    pages_in_session = 0
    detections = result.detections
    for i in range(n):
        sim = sims[i]
        if not session_alive:
            session_alive = True
            pages_in_session = 0
            result.sessions_started += 1
        result.pages_visited += 1
        pages_in_session += 1
        if sim.uses_hb:
            inner_state["state"] = (state_hi_l[i] << 64) | state_lo_l[i]
            inner_state["inc"] = (inc_hi_l[i] << 64) | inc_lo_l[i]
            bit_generator.state = state_template
            detection, load_event = _simulate_hb_page(sim, gen, detector, crawl_day)
        elif plain_l[i]:
            load_event = load_plain_l[i]
            detection = SiteDetection(
                domain=sim.domain, rank=sim.rank, hb_detected=False,
                crawl_day=crawl_day, page_load_ms=load_event,
            )
        else:
            inner_state["state"] = (hi1_l[i] << 64) | lo1_l[i]
            inner_state["inc"] = (inc_hi_l[i] << 64) | inc_lo_l[i]
            bit_generator.state = state_template
            load_event = _simulate_waterfall_page(sim, gen)
            detection = SiteDetection(
                domain=sim.domain, rank=sim.rank, hb_detected=False,
                crawl_day=crawl_day, page_load_ms=load_event,
            )
        if load_event > timeout_ms:
            result.timed_out_domains.append(sim.domain)
            session_alive = False
        detections.append(detection)
        if on_detection is not None:
            on_detection(detection)
        if session_alive and pages_in_session >= restart_every:
            session_alive = False
    return result
