"""Wayback-Machine-style snapshot archive.

Figure 4 of the paper measures HB adoption from 2014 to 2019 by downloading
yearly snapshots of the top-1k sites from the Internet Archive and running a
*static* analysis over the archived HTML (dynamic analysis is not reliable on
played-back pages).  This module provides the archive substrate: it stores
static HTML snapshots per (domain, year), generated so that HB adoption over
the years follows a configurable curve, and with realistic noise sources
(renamed libraries, HB-looking scripts on non-HB pages) that make static
analysis imperfect in exactly the ways the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.models import WrapperKind
from repro.ecosystem.alexa import TopList
from repro.utils.rng import derive_rng

__all__ = ["Snapshot", "SnapshotArchive", "ADOPTION_CURVE"]


#: Calibrated yearly HB adoption probabilities for the top-1k population,
#: matching Figure 4: ~10% of sites were early adopters in 2014, adoption grew
#: through the 2016 breakthrough, then plateaued around 20%.
ADOPTION_CURVE: Mapping[int, float] = {
    2014: 0.085,
    2015: 0.115,
    2016: 0.155,
    2017: 0.185,
    2018: 0.205,
    2019: 0.215,
}

_WRAPPER_SCRIPT_NAMES: Mapping[WrapperKind, str] = {
    WrapperKind.PREBID: "prebid.js",
    WrapperKind.GPT: "gpt.js",
    WrapperKind.PUBFOOD: "pubfood.js",
    WrapperKind.CUSTOM: "hb-wrapper.js",
}


@dataclass(frozen=True)
class Snapshot:
    """One archived page: the static HTML of ``domain`` as captured in ``year``."""

    domain: str
    year: int
    html: str
    uses_hb: bool
    wrapper: WrapperKind | None = None

    def __post_init__(self) -> None:
        if not self.domain:
            raise ConfigurationError("snapshot domain must be non-empty")
        if self.year < 1990:
            raise ConfigurationError("snapshot year looks implausible")


def _render_header_scripts(scripts: Iterable[str]) -> str:
    return "\n    ".join(f'<script async src="{src}"></script>' for src in scripts)


def _snapshot_html(domain: str, year: int, scripts: Iterable[str], body_note: str) -> str:
    """Produce minimal but structurally realistic archived HTML."""
    return (
        "<!DOCTYPE html>\n"
        f"<html lang=\"en\">\n"
        "  <head>\n"
        f"    <title>{domain} ({year})</title>\n"
        f"    {_render_header_scripts(scripts)}\n"
        "  </head>\n"
        "  <body>\n"
        f"    <!-- archived snapshot of {domain}, {year} -->\n"
        f"    <p>{body_note}</p>\n"
        "    <div id=\"content\">Lorem ipsum dolor sit amet.</div>\n"
        "  </body>\n"
        "</html>\n"
    )


class SnapshotArchive:
    """Generates and serves historical static snapshots for a top list.

    Parameters
    ----------
    top_lists:
        Mapping year -> :class:`~repro.ecosystem.alexa.TopList` of the domains
        whose snapshots exist for that year.
    adoption_curve:
        Year -> probability that a listed site had HB deployed that year.
    renamed_wrapper_rate:
        Among HB sites, the fraction that self-host the wrapper under a
        non-standard file name (a static-analysis false *negative*).
    misleading_script_rate:
        Among non-HB sites, the fraction that include a script whose name
        merely looks HB-related (a static-analysis false *positive* source).
    """

    def __init__(
        self,
        top_lists: Mapping[int, TopList],
        *,
        adoption_curve: Mapping[int, float] | None = None,
        seed: int = 2019,
        renamed_wrapper_rate: float = 0.06,
        misleading_script_rate: float = 0.02,
    ) -> None:
        if not top_lists:
            raise ConfigurationError("the snapshot archive needs at least one year")
        self.top_lists = dict(top_lists)
        self.adoption_curve = dict(adoption_curve or ADOPTION_CURVE)
        self.seed = seed
        if not 0 <= renamed_wrapper_rate <= 1 or not 0 <= misleading_script_rate <= 1:
            raise ConfigurationError("noise rates must be in [0, 1]")
        self.renamed_wrapper_rate = renamed_wrapper_rate
        self.misleading_script_rate = misleading_script_rate
        self._cache: dict[tuple[str, int], Snapshot] = {}

    @property
    def years(self) -> tuple[int, ...]:
        return tuple(sorted(self.top_lists))

    def adoption_probability(self, year: int) -> float:
        if year in self.adoption_curve:
            return self.adoption_curve[year]
        known_years = sorted(self.adoption_curve)
        if year < known_years[0]:
            return self.adoption_curve[known_years[0]] * 0.5
        return self.adoption_curve[known_years[-1]]

    def domains_for(self, year: int) -> tuple[str, ...]:
        if year not in self.top_lists:
            raise KeyError(f"no top list archived for year {year}")
        return self.top_lists[year].domains

    def snapshot(self, domain: str, year: int) -> Snapshot:
        """Return (generating lazily) the archived snapshot of a domain."""
        key = (domain, year)
        if key not in self._cache:
            self._cache[key] = self._build_snapshot(domain, year)
        return self._cache[key]

    def snapshots_for(self, year: int) -> list[Snapshot]:
        """All snapshots of the year's top list (generated on demand)."""
        return [self.snapshot(domain, year) for domain in self.domains_for(year)]

    # -- generation ----------------------------------------------------------
    def _build_snapshot(self, domain: str, year: int) -> Snapshot:
        rng = derive_rng(self.seed, "wayback", domain, year)
        uses_hb = rng.random() < self.adoption_probability(year)

        scripts = ["https://cdn.example/jquery-2.2.4.min.js"]
        wrapper: WrapperKind | None = None
        if uses_hb:
            wrapper_choices = [WrapperKind.PREBID, WrapperKind.GPT, WrapperKind.PUBFOOD,
                               WrapperKind.CUSTOM]
            wrapper_weights = [0.64, 0.24, 0.07, 0.05]
            wrapper = wrapper_choices[int(rng.choice(len(wrapper_choices), p=wrapper_weights))]
            script_name = _WRAPPER_SCRIPT_NAMES[wrapper]
            if rng.random() < self.renamed_wrapper_rate:
                # Self-hosted, renamed wrapper: static analysis cannot match it
                # by file name, though the page genuinely runs HB.
                script_name = f"bundle-{abs(hash(domain)) % 997}.min.js"
            scripts.append(f"https://{domain}/static/{script_name}")
            if wrapper is WrapperKind.PREBID and rng.random() < 0.5:
                scripts.append("https://cdn.jsdelivr.net/npm/prebid.js@latest/dist/prebid.js")
            body_note = "This page funds itself through programmatic advertising."
        else:
            if rng.random() < self.misleading_script_rate:
                # A script whose name contains an HB-looking token but which is
                # unrelated to header bidding (e.g. a "bidding" game widget).
                scripts.append(f"https://{domain}/static/auction-widget-headerbid-theme.js")
            body_note = "A perfectly ordinary website."
            if rng.random() < 0.5:
                scripts.append("https://www.google-analytics.com/analytics.js")

        html = _snapshot_html(domain, year, scripts, body_note)
        return Snapshot(domain=domain, year=year, html=html, uses_hb=uses_hb, wrapper=wrapper)
