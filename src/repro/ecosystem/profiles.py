"""Precompiled site profiles: the immutable inputs of a page-load simulation.

Simulating one page visit derives a lot of state that never changes between
visits to the same site: the rendered page and its resource list, each demand
partner's log-normal latency parameters at the site's latency scale, the
combined price multiplier (size x facet x popularity x vanilla-profile) each
partner applies per ad slot, the static fields of every bid request, the
internal-bidder candidate pool of server-side/hybrid ad servers, and the
waterfall chain tables of non-HB pages.  The slow path re-derives all of it
on every load; over a 34-day longitudinal campaign that is 34 re-derivations
per site of values that are pure functions of ``(environment, seed, site)``.

This module compiles those inputs once per site into a flat, slotted
:class:`SiteProfile` held in a :class:`SiteProfileTable`.  The hot loops in
:mod:`repro.browser.engine`, :mod:`repro.hb.client_side`,
:mod:`repro.hb.server_side`, :mod:`repro.hb.hybrid` and
:mod:`repro.hb.waterfall` then read precomputed values instead of re-deriving
them per page.

Equivalence contract
--------------------
The fast path must keep emitted detections **byte-identical** to the slow
reference path (``CrawlConfig(fast_path=False)``).  Every precomputed float
is therefore produced by the *same arithmetic expression* (same operand
order, same intermediate products) the slow path evaluates per page, and the
samplers below consume the page RNG stream in exactly the same call order as
the model classes they shortcut (:class:`~repro.ecosystem.partners.LatencyModel`,
:class:`~repro.ecosystem.partners.BidBehavior`,
:meth:`~repro.hb.environment.AuctionEnvironment.sample_internal_bidders`).
``tests/test_fastpath_equivalence.py`` asserts the end-to-end guarantee.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.browser.page import Page, build_page
from repro.ecosystem.bidding import popularity_price_multiplier
from repro.ecosystem.partners import DemandPartner, LatencyModel, PartnerResponse
from repro.ecosystem.publishers import Publisher
from repro.models import AdSlotSize, HBFacet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hb.environment import AuctionEnvironment

__all__ = [
    "AD_SERVER_PATH_SCALE",
    "WATERFALL_MAX_LEVELS",
    "WATERFALL_SLOT_SIZE_LABELS",
    "waterfall_fill_probability",
    "waterfall_head_size",
    "LatencyDraw",
    "PartnerProfile",
    "WaterfallPartnerProfile",
    "SiteWaterfall",
    "SiteProfile",
    "SiteProfileTable",
    "sample_without_replacement",
]


def sample_without_replacement(
    rng: np.random.Generator,
    p: np.ndarray,
    cdf: np.ndarray,
    size: int,
) -> np.ndarray:
    """``rng.choice(len(p), size=size, replace=False, p=p)`` with a precomputed CDF.

    ``Generator.choice`` spends most of its ~25 µs per call validating and
    re-normalising ``p`` and rebuilding its cumulative distribution; the hot
    loops here draw from the *same* distribution thousands of times per
    crawl.  This reproduces numpy's draw algorithm — batched uniform draw,
    right-bisect into the CDF, de-duplicate keeping first occurrences, redraw
    over the zeroed remainder on collision — bit-identically (same stream
    consumption, same result order).  ``tests/test_profiles.py`` asserts
    exact agreement with ``Generator.choice``, values and stream state both,
    so a numpy algorithm change cannot silently break byte-identity.
    """
    x = rng.random((size,))
    new = cdf.searchsorted(x, side="right")
    if size == 1:
        return new
    _, unique_indices = np.unique(new, return_index=True)
    if unique_indices.size == size:  # common case: no collision
        return new
    unique_indices.sort()
    new = new.take(unique_indices)
    found = np.zeros(size, dtype=new.dtype)
    found[: new.size] = new
    n_uniq = new.size
    p = p.copy()
    while n_uniq < size:
        x = rng.random((size - n_uniq,))
        p[found[0:n_uniq]] = 0
        remaining_cdf = np.cumsum(p)
        remaining_cdf /= remaining_cdf[-1]
        new = remaining_cdf.searchsorted(x, side="right")
        _, unique_indices = np.unique(new, return_index=True)
        unique_indices.sort()
        new = new.take(unique_indices)
        found[n_uniq : n_uniq + new.size] = new
        n_uniq += new.size
    return found


#: Waterfall model parameters shared with :mod:`repro.hb.waterfall` (which
#: imports them — this is the lowest layer, so sharing avoids an import
#: cycle).  A single definition means the compiled tables and the slow path
#: cannot drift apart.
AD_SERVER_PATH_SCALE: float = 0.6
WATERFALL_MAX_LEVELS: int = 4
#: Sizes :func:`repro.hb.waterfall.default_waterfall_slot` can draw.
WATERFALL_SLOT_SIZE_LABELS: tuple[str, ...] = ("300x250", "728x90", "160x600")


def waterfall_fill_probability(bid_probability: float) -> float:
    """Chance a waterfall network fills a request (see ``_rtb_price``)."""
    return min(0.95, 0.60 + bid_probability)


def waterfall_head_size(n_levels: int) -> int:
    """Candidate-pool size of an ``n_levels`` chain (see ``build_waterfall_chain``)."""
    return max(8, n_levels * 3)


@dataclass(frozen=True, slots=True)
class LatencyDraw:
    """One precompiled log-normal latency sampler.

    Replicates :meth:`LatencyModel.sample` for a fixed scale: the ``mu`` is
    ``log(median_ms * scale)`` computed with the exact operand grouping the
    caller uses, so the drawn values are bit-identical.
    """

    mu: float
    sigma: float
    minimum_ms: float
    slow_probability: float
    slow_multiplier: float

    @classmethod
    def compile(cls, model: LatencyModel, scale: float) -> "LatencyDraw":
        return cls(
            mu=math.log(model.median_ms * scale),
            sigma=model.sigma,
            minimum_ms=model.minimum_ms,
            slow_probability=model.slow_response_probability,
            slow_multiplier=model.slow_multiplier,
        )

    def sample(self, rng: np.random.Generator) -> float:
        value = float(rng.lognormal(mean=self.mu, sigma=self.sigma))
        if self.slow_probability and rng.random() < self.slow_probability:
            value *= self.slow_multiplier
        return max(self.minimum_ms, value)


@dataclass(frozen=True, slots=True)
class PartnerProfile:
    """One demand partner's precompiled behaviour for one site.

    ``cpm_mus`` is aligned with the site's ``auctioned_slots``: entry *i* is
    ``log(base_cpm * size_multiplier(slot_i) * facet_multiplier)``, the exact
    log-normal location :meth:`BidBehavior.sample_cpm` would recompute per
    page from the multipliers
    :meth:`AuctionEnvironment.partner_response` re-derives.
    """

    partner: DemandPartner
    bidder_code: str
    endpoint: str
    latency: LatencyDraw
    internal: LatencyDraw | None
    bid_probability: float
    cpm_sigma: float
    cpm_mus: tuple[float, ...]

    def respond(
        self,
        rng: np.random.Generator,
        slot_index: int,
        slot_code: str,
        size: AdSlotSize,
    ) -> PartnerResponse:
        """Drop-in for ``environment.partner_response`` (same RNG stream)."""
        latency_ms = self.latency.sample(rng)
        if self.internal is not None:
            latency_ms += self.internal.sample(rng)
        cpm: float | None = None
        if rng.random() < self.bid_probability:
            drawn = float(rng.lognormal(mean=self.cpm_mus[slot_index], sigma=self.cpm_sigma))
            cpm = round(max(drawn, 0.0001), 5)
        return PartnerResponse(
            partner=self.partner,
            slot_code=slot_code,
            latency_ms=latency_ms,
            bid_cpm=cpm,
            size=size,
        )


@dataclass(frozen=True, slots=True)
class WaterfallPartnerProfile:
    """Precompiled waterfall behaviour of one ad network at one site scale."""

    partner: DemandPartner
    latency: LatencyDraw
    fill_probability: float
    cpm_sigma: float
    cpm_mu_by_label: Mapping[str, float]


@dataclass(frozen=True, slots=True)
class SiteWaterfall:
    """Chain-construction tables for non-HB pages at one latency scale.

    ``heads[n - 1]`` holds the candidate pool, its normalised popularity
    weights and their cumulative distribution — everything
    :func:`repro.hb.waterfall.build_waterfall_chain` would rebuild per page
    for an ``n``-level chain.
    """

    heads: tuple[tuple[tuple[DemandPartner, ...], np.ndarray, np.ndarray], ...]
    profiles: Mapping[str, WaterfallPartnerProfile]
    max_levels: int


@dataclass(slots=True)
class SiteProfile:
    """Every immutable simulation input of one site, precompiled.

    Non-HB sites populate only ``page``/``resource_urls``/``waterfall``; the
    remaining fields describe the site's header-bidding deployment.
    """

    publisher: Publisher
    page: Page
    #: Fully-built URLs of the page's baseline resources (the slow path runs
    #: each (host, path) pair through ``build_url`` — quoting included — on
    #: every single page load).
    resource_urls: tuple[str, ...] = ()
    waterfall: SiteWaterfall | None = None
    # -- header bidding ------------------------------------------------------
    partner_profiles: tuple[PartnerProfile, ...] = ()
    #: Dispatch list for the client-visible auction: equals
    #: ``partner_profiles`` for client-side sites, the partners minus the ad
    #: server for hybrid sites.
    client_partner_profiles: tuple[PartnerProfile, ...] = ()
    #: ``(url, params)`` per client partner; ``params`` is a template whose
    #: ``auction_id`` is filled in per page (dict order matches
    #: :func:`repro.hb.adapters.build_bid_request`).
    bid_request_templates: tuple[tuple[str, Mapping[str, str]], ...] = ()
    bidders_by_code: Mapping[str, DemandPartner] | None = None
    client_bidders_by_code: Mapping[str, DemandPartner] | None = None
    display_codes: frozenset[str] = frozenset()
    #: Key-value push target (``https://<ad server host>/gampad/ads``).
    ad_server_push_url: str | None = None
    ad_server_latency_mu: float = 0.0
    ad_server_latency_sigma: float = 0.0
    # -- server-side facet ---------------------------------------------------
    server_request_url: str | None = None
    server_request_params: Mapping[str, str] | None = None
    aggregator_latency: LatencyDraw | None = None
    aggregator_internal: LatencyDraw | None = None
    # -- hybrid facet --------------------------------------------------------
    hybrid_render_url: str | None = None
    hybrid_internal_delay: LatencyDraw | None = None
    # -- server-side / hybrid internal auction -------------------------------
    internal_profiles: tuple[PartnerProfile, ...] = ()
    internal_weights: np.ndarray | None = None
    internal_cdf: np.ndarray | None = None
    internal_pool: tuple[int, int] = (1, 1)

    def sample_internal_bidders(self, rng: np.random.Generator) -> list[PartnerProfile]:
        """Mirror of :meth:`AuctionEnvironment.sample_internal_bidders`.

        Consumes the RNG identically (count draw first, then the weighted
        choice over the precompiled candidate pool).
        """
        low, high = self.internal_pool
        count = int(rng.integers(low, high + 1))
        profiles = self.internal_profiles
        if not profiles:
            return []
        count = min(count, len(profiles))
        chosen = sample_without_replacement(rng, self.internal_weights, self.internal_cdf, count)
        return [profiles[int(i)] for i in chosen]

    def ad_server_latency(self, rng: np.random.Generator) -> float:
        """Mirror of :meth:`AuctionEnvironment.ad_server_latency`."""
        return max(
            10.0,
            float(rng.lognormal(mean=self.ad_server_latency_mu, sigma=self.ad_server_latency_sigma)),
        )


class SiteProfileTable:
    """Lazily-compiled, bounded cache of :class:`SiteProfile` objects.

    One table belongs to one ``(environment, seed)`` pair — the two inputs
    that, together with the publisher, fully determine a profile.  Workers
    keep one table for their whole lifetime, so a longitudinal campaign
    compiles each site once and every later visit is a dictionary hit.

    The table is safe to share between worker threads: compilation is
    deterministic (a racy double-compile produces identical values) and the
    insert/evict critical section is guarded by a lock.
    """

    __slots__ = (
        "environment",
        "seed",
        "max_sites",
        "_profiles",
        "_lock",
        "_latency_cache",
        "_cpm_mu_cache",
        "_facet_multiplier_cache",
        "_waterfall_cache",
        "compiles",
        # Weak-referenceable so the columnar simulator can key its compiled
        # per-site cache on the table without pinning it alive.
        "__weakref__",
    )

    def __init__(
        self,
        environment: "AuctionEnvironment",
        *,
        seed: int = 2019,
        max_sites: int = 16384,
    ) -> None:
        if max_sites < 1:
            raise ValueError("a profile table must hold at least one site")
        self.environment = environment
        self.seed = seed
        self.max_sites = max_sites
        self._profiles: dict[str, SiteProfile] = {}
        self._lock = threading.Lock()
        self._latency_cache: dict[tuple[str, float], tuple[LatencyDraw, LatencyDraw]] = {}
        self._cpm_mu_cache: dict[tuple[str, str, HBFacet], float] = {}
        self._facet_multiplier_cache: dict[tuple[str, HBFacet], float] = {}
        self._waterfall_cache: dict[float, SiteWaterfall] = {}
        self.compiles = 0

    def __len__(self) -> int:
        return len(self._profiles)

    def profile_for(self, publisher: Publisher) -> SiteProfile:
        """The compiled profile for ``publisher`` (compiled on first use)."""
        profile = self._profiles.get(publisher.domain)
        if profile is not None and (
            profile.publisher is publisher or profile.publisher == publisher
        ):
            return profile
        profile = self._compile(publisher)
        with self._lock:
            if len(self._profiles) >= self.max_sites and publisher.domain not in self._profiles:
                # Bounded: drop the oldest half wholesale.  Eviction is rare
                # (tables are sized for the paper's 35k-site discovery pass)
                # and re-compiling is cheap and deterministic.
                for domain in list(self._profiles)[: self.max_sites // 2]:
                    del self._profiles[domain]
            self._profiles[publisher.domain] = profile
        return profile

    def precompile(self, publishers: Sequence[Publisher]) -> None:
        """Eagerly compile a batch (used to warm tables outside the hot loop).

        Unlike a loop over :meth:`profile_for` (one lock acquisition per
        site), this compiles every missing profile first and publishes the
        whole batch under a single lock acquisition, so shard warm-up does
        not serialize behind per-site locking.  A fully warm batch touches
        the lock zero times.
        """
        profiles = self._profiles
        fresh: list[tuple[str, SiteProfile]] = []
        for publisher in publishers:
            profile = profiles.get(publisher.domain)
            if profile is not None and (
                profile.publisher is publisher or profile.publisher == publisher
            ):
                continue
            fresh.append((publisher.domain, self._compile(publisher)))
        if not fresh:
            return
        with self._lock:
            for domain, profile in fresh:
                if len(profiles) >= self.max_sites and domain not in profiles:
                    for evicted in list(profiles)[: self.max_sites // 2]:
                        del profiles[evicted]
                profiles[domain] = profile

    # -- compilation helpers -------------------------------------------------
    def _latency_draws(self, partner: DemandPartner, scale: float) -> tuple[LatencyDraw, LatencyDraw]:
        key = (partner.name, scale)
        draws = self._latency_cache.get(key)
        if draws is None:
            draws = (
                LatencyDraw.compile(partner.latency, scale),
                # The second draw of an internal RTB auction runs at 0.35x the
                # site scale; the operand grouping mirrors
                # ``latency.sample(rng, scale=latency_scale * 0.35)``.
                LatencyDraw.compile(partner.latency, scale * 0.35),
            )
            self._latency_cache[key] = draws
        return draws

    def _facet_multiplier(self, partner: DemandPartner, facet: HBFacet) -> float:
        """The combined facet multiplier of ``environment.partner_response``."""
        key = (partner.name, facet)
        combined = self._facet_multiplier_cache.get(key)
        if combined is None:
            env = self.environment
            combined = (
                env.pricing.facet_multiplier(facet)
                * (env.pricing.vanilla_profile_multiplier if env.vanilla_profile else 1.0)
                * popularity_price_multiplier(env.popularity_rank(partner), env.total_partners)
            )
            self._facet_multiplier_cache[key] = combined
        return combined

    def _cpm_mu(self, partner: DemandPartner, size: AdSlotSize, facet: HBFacet) -> float:
        key = (partner.name, size.label, facet)
        mu = self._cpm_mu_cache.get(key)
        if mu is None:
            location = (
                partner.bidding.base_cpm
                * self.environment.pricing.size_multiplier(size)
                * self._facet_multiplier(partner, facet)
            )
            mu = math.log(location)
            self._cpm_mu_cache[key] = mu
        return mu

    def _partner_profile(
        self, partner: DemandPartner, publisher: Publisher, facet: HBFacet
    ) -> PartnerProfile:
        latency, internal = self._latency_draws(partner, publisher.latency_scale)
        return PartnerProfile(
            partner=partner,
            bidder_code=partner.bidder_code,
            endpoint=partner.bid_endpoint(),
            latency=latency,
            internal=internal if partner.runs_internal_auction else None,
            bid_probability=partner.bidding.bid_probability,
            cpm_sigma=partner.bidding.cpm_sigma,
            cpm_mus=tuple(
                self._cpm_mu(partner, slot.primary_size, facet)
                for slot in publisher.auctioned_slots
            ),
        )

    def _waterfall_for(self, scale: float) -> SiteWaterfall:
        site_wf = self._waterfall_cache.get(scale)
        if site_wf is not None:
            return site_wf
        env = self.environment
        # Same ordering build_waterfall_chain derives per page.
        partners = sorted(env.registry.partners, key=lambda p: p.popularity_weight, reverse=True)
        max_levels = WATERFALL_MAX_LEVELS
        heads = []
        profiles: dict[str, WaterfallPartnerProfile] = {}
        for n_levels in range(1, max_levels + 1):
            head = partners[: waterfall_head_size(n_levels)]
            weights = np.asarray([p.popularity_weight for p in head], dtype=float)
            weights = weights / weights.sum()
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            heads.append((tuple(head), weights, cdf))
            for partner in head:
                if partner.name in profiles:
                    continue
                mu_by_label = {}
                for label in WATERFALL_SLOT_SIZE_LABELS:
                    size = AdSlotSize(*map(int, label.split("x")))
                    location = (
                        partner.bidding.base_cpm
                        * env.pricing.size_multiplier(size)
                        * env.pricing.vanilla_profile_multiplier
                    )
                    mu_by_label[label] = math.log(location)
                profiles[partner.name] = WaterfallPartnerProfile(
                    partner=partner,
                    latency=LatencyDraw.compile(partner.latency, scale * AD_SERVER_PATH_SCALE),
                    fill_probability=waterfall_fill_probability(partner.bidding.bid_probability),
                    cpm_sigma=partner.bidding.cpm_sigma,
                    cpm_mu_by_label=mu_by_label,
                )
        site_wf = SiteWaterfall(heads=tuple(heads), profiles=profiles, max_levels=max_levels)
        with self._lock:
            self._waterfall_cache.setdefault(scale, site_wf)
        return self._waterfall_cache[scale]

    def _compile(self, publisher: Publisher) -> SiteProfile:
        self.compiles += 1
        env = self.environment
        page = build_page(publisher, seed=self.seed)
        from repro.utils.urls import build_url

        resource_urls = tuple(build_url(host, path) for host, path in page.baseline_resources)
        if not publisher.uses_hb:
            return SiteProfile(
                publisher=publisher,
                page=page,
                resource_urls=resource_urls,
                waterfall=self._waterfall_for(publisher.latency_scale),
            )

        facet = publisher.facet
        assert facet is not None
        scale = publisher.latency_scale
        slots = publisher.auctioned_slots
        partner_profiles = tuple(
            self._partner_profile(partner, publisher, facet) for partner in publisher.partners
        )

        # Import here: adapters sits above ecosystem in the layering and is
        # only needed at compile time, never in the per-page loop.
        from repro.hb.adapters import build_bid_request

        ad_server = publisher.ad_server
        if facet is HBFacet.HYBRID and ad_server is not None:
            client_partners = tuple(
                p for p in publisher.partners if p is not ad_server
            ) or publisher.partners
        else:
            client_partners = publisher.partners
        profile_by_partner = {
            id(partner): prof for partner, prof in zip(publisher.partners, partner_profiles)
        }
        client_profiles = tuple(profile_by_partner[id(p)] for p in client_partners)
        templates = tuple(
            (spec.url, dict(spec.params))
            for spec in (
                build_bid_request(
                    partner,
                    slots,
                    page_url=publisher.url,
                    auction_id="",
                    timeout_ms=publisher.timeout_ms,
                )
                for partner in client_partners
            )
        )

        profile = SiteProfile(
            publisher=publisher,
            page=page,
            resource_urls=resource_urls,
            partner_profiles=partner_profiles,
            client_partner_profiles=client_profiles,
            bid_request_templates=templates,
            bidders_by_code={p.bidder_code: p for p in publisher.partners},
            client_bidders_by_code={p.bidder_code: p for p in client_partners},
            display_codes=frozenset(slot.code for slot in publisher.slots),
            # float(np.log(...)), not math.log: the slow path
            # (AuctionEnvironment.ad_server_latency) computes this mu with
            # np.log, and the two are not bitwise-identical for every input.
            ad_server_latency_mu=float(np.log(env.ad_server_latency_median_ms * scale)),
            ad_server_latency_sigma=env.ad_server_latency_sigma,
        )

        if facet is HBFacet.CLIENT_SIDE:
            profile.ad_server_push_url = f"https://{publisher.own_ad_server_host}/gampad/ads"
        elif facet is HBFacet.SERVER_SIDE:
            aggregator = publisher.partners[0]
            agg_latency, agg_internal = self._latency_draws(aggregator, scale)
            profile.aggregator_latency = agg_latency
            profile.aggregator_internal = agg_internal
            profile.server_request_url = f"https://{aggregator.primary_domain}/gampad/ads"
            profile.server_request_params = {
                "iu": f"/{publisher.domain}/front",
                "prev_iu_szs": "|".join(",".join(slot.accepted_labels) for slot in slots),
                "slot_count": str(len(slots)),
                "correlator": "",
            }
            self._compile_internal_auction(profile, (aggregator,), facet)
        else:  # hybrid
            assert ad_server is not None
            profile.ad_server_push_url = f"https://{ad_server.primary_domain}/gampad/ads"
            profile.hybrid_render_url = f"https://{ad_server.primary_domain}/gampad/render"
            profile.hybrid_internal_delay = LatencyDraw.compile(ad_server.latency, scale * 0.5)
            self._compile_internal_auction(profile, (ad_server, *client_partners), facet)
        return profile

    def _compile_internal_auction(
        self,
        profile: SiteProfile,
        exclude: tuple[DemandPartner, ...],
        facet: HBFacet,
    ) -> None:
        """Precompute the candidate pool of ``sample_internal_bidders``."""
        env = self.environment
        candidates = [p for p in env.registry.partners if p not in exclude]
        profile.internal_pool = env.internal_auction_pool
        if not candidates:
            return
        weights = np.asarray([p.popularity_weight for p in candidates], dtype=float)
        profile.internal_weights = weights / weights.sum()
        cdf = np.cumsum(profile.internal_weights)
        cdf /= cdf[-1]
        profile.internal_cdf = cdf
        profile.internal_profiles = tuple(
            self._partner_profile(partner, profile.publisher, facet) for partner in candidates
        )
