"""Synthetic ad-ecosystem substrate.

This package generates the *ground truth* that the simulated browser renders
and that HBDetector then observes: demand partners and their behaviour,
publishers and their header-bidding configurations, the publisher ad server,
Alexa-style top lists and a Wayback-style snapshot archive.
"""

from repro.ecosystem.partners import (
    BidBehavior,
    DemandPartner,
    LatencyModel,
    PartnerResponse,
)
from repro.ecosystem.registry import PartnerRegistry, default_registry
from repro.ecosystem.publishers import (
    Publisher,
    PublisherPopulation,
    PopulationConfig,
    generate_population,
)
from repro.ecosystem.adserver import AdServer, AdServerDecision, LineItem
from repro.ecosystem.alexa import TopList, TopListEntry, generate_top_list, yearly_top_lists
from repro.ecosystem.wayback import SnapshotArchive, Snapshot

__all__ = [
    "BidBehavior",
    "DemandPartner",
    "LatencyModel",
    "PartnerResponse",
    "PartnerRegistry",
    "default_registry",
    "Publisher",
    "PublisherPopulation",
    "PopulationConfig",
    "generate_population",
    "AdServer",
    "AdServerDecision",
    "LineItem",
    "TopList",
    "TopListEntry",
    "generate_top_list",
    "yearly_top_lists",
    "SnapshotArchive",
    "Snapshot",
]
