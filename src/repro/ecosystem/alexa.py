"""Alexa-style top-list generation.

The paper crawls the head (35k) of a purchased Alexa list from 01/2017 and
validates its representativeness against the yearly top lists of Scheitle et
al. (overlaps of 78.4% / 62.1% / 58.4% / 55.3% for 2017-2019).  This module
generates deterministic ranking lists with a configurable year-over-year churn
so the same representativeness analysis can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import derive_rng

__all__ = ["TopListEntry", "TopList", "generate_top_list", "yearly_top_lists", "overlap_fraction"]


@dataclass(frozen=True)
class TopListEntry:
    """One ranked domain in a top list."""

    rank: int
    domain: str

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ConfigurationError("top list ranks are 1-based")
        if not self.domain:
            raise ConfigurationError("top list domains must be non-empty")


class TopList:
    """An ordered list of ranked domains for one point in time."""

    def __init__(self, label: str, entries: Sequence[TopListEntry]) -> None:
        if not entries:
            raise ConfigurationError("a top list cannot be empty")
        ranks = [entry.rank for entry in entries]
        if ranks != sorted(ranks):
            raise ConfigurationError("top list entries must be sorted by rank")
        self.label = label
        self._entries = list(entries)
        self._by_domain = {entry.domain: entry for entry in entries}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TopListEntry]:
        return iter(self._entries)

    def __contains__(self, domain: str) -> bool:
        return domain in self._by_domain

    @property
    def domains(self) -> tuple[str, ...]:
        return tuple(entry.domain for entry in self._entries)

    def head(self, n: int) -> "TopList":
        """The top-``n`` prefix of this list."""
        if n < 1:
            raise ValueError("head size must be positive")
        return TopList(f"{self.label}-top{n}", self._entries[:n])

    def rank_of(self, domain: str) -> int:
        return self._by_domain[domain].rank


def generate_top_list(size: int, *, label: str = "toplist", seed: int = 2019,
                      domain_pool_factor: float = 3.0) -> TopList:
    """Generate a base ranking list of ``size`` synthetic domains.

    The domain universe is ``domain_pool_factor`` times larger than the list
    so that churn in :func:`yearly_top_lists` can draw replacement domains.
    """
    if size <= 0:
        raise ConfigurationError("top list size must be positive")
    if domain_pool_factor < 1.0:
        raise ConfigurationError("domain pool factor must be >= 1")
    entries = [TopListEntry(rank=rank, domain=f"site-{rank:06d}.example") for rank in range(1, size + 1)]
    return TopList(label=label, entries=entries)


def _churned(previous: TopList, year: int, churn_rate: float, seed: int) -> TopList:
    """Produce the next year's list by perturbing the previous year's."""
    rng = derive_rng(seed, "toplist-churn", year)
    size = len(previous)
    survivors = [entry.domain for entry in previous if rng.random() > churn_rate]
    # Newly popular domains take the place of churned ones.  Their names embed
    # the year so they never collide with the base universe.
    newcomers = [f"new-{year}-{index:05d}.example" for index in range(size - len(survivors))]
    pool = survivors + newcomers
    # Ranks shuffle mildly: survivors keep roughly their order with noise.
    noise = rng.normal(loc=0.0, scale=size * 0.08, size=len(pool))
    order = np.argsort(np.arange(len(pool)) + noise)
    entries = [TopListEntry(rank=position + 1, domain=pool[int(index)])
               for position, index in enumerate(order)]
    return TopList(label=f"toplist-{year}", entries=entries)


def yearly_top_lists(size: int, years: Iterable[int], *, seed: int = 2019,
                     churn_rate: float = 0.12) -> dict[int, TopList]:
    """Generate one top list per year with year-over-year churn.

    ``churn_rate`` is the per-year probability that a domain drops off the
    list; the default reproduces overlap percentages in the range the paper
    reports for 2017-2019 against a 2017 base list.
    """
    if not 0.0 <= churn_rate < 1.0:
        raise ConfigurationError("churn rate must be in [0, 1)")
    ordered_years = sorted(set(years))
    if not ordered_years:
        raise ConfigurationError("at least one year is required")
    lists: dict[int, TopList] = {}
    current = generate_top_list(size, label=f"toplist-{ordered_years[0]}", seed=seed)
    lists[ordered_years[0]] = current
    for year in ordered_years[1:]:
        current = _churned(current, year, churn_rate, seed)
        lists[year] = current
    return lists


def overlap_fraction(list_a: TopList, list_b: TopList) -> float:
    """Fraction of ``list_a`` domains that also appear in ``list_b``."""
    if len(list_a) == 0:
        return 0.0
    hits = sum(1 for domain in list_a.domains if domain in list_b)
    return hits / len(list_a)
