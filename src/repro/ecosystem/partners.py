"""Demand-partner behaviour models.

A :class:`DemandPartner` is an ad-tech company that can be configured as a
bidder in a publisher's header-bidding wrapper (DSPs, SSPs, ad exchanges) or
act as the publisher's ad server (e.g. DoubleClick for Publishers).  The
partner's observable behaviour during an auction is fully described by two
models:

* :class:`LatencyModel` — how long the partner takes to answer a bid request
  (log-normal, parameterised by its median and a shape factor), and
* :class:`BidBehavior` — whether it bids at all for a vanilla (cookie-less)
  crawler profile, and how much it bids depending on the ad-slot size.

Both are sampled with explicit :class:`numpy.random.Generator` instances so
the whole ecosystem is reproducible from a single seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.models import AdSlotSize, HBFacet, PartnerKind
from repro.utils.ids import slugify

__all__ = ["LatencyModel", "BidBehavior", "PartnerResponse", "DemandPartner"]


@dataclass(frozen=True)
class LatencyModel:
    """Log-normal response-latency model for a demand partner.

    ``median_ms`` is the distribution median; ``sigma`` is the log-space
    standard deviation (popular partners in the paper exhibit lower
    variability, i.e. smaller sigma).  ``minimum_ms`` is a hard floor that
    models the unavoidable network round trip.
    """

    median_ms: float
    sigma: float = 0.55
    minimum_ms: float = 15.0
    #: Probability that a response is served by an overloaded backend and takes
    #: ``slow_multiplier`` times longer than usual.  The paper attributes the
    #: chronic late bidders of Figure 18 to partners whose infrastructure
    #: cannot keep up with the broadcast volume of HB bid requests.
    slow_response_probability: float = 0.0
    slow_multiplier: float = 10.0

    def __post_init__(self) -> None:
        if self.median_ms <= 0:
            raise ConfigurationError("latency median must be positive")
        if self.sigma <= 0:
            raise ConfigurationError("latency sigma must be positive")
        if self.minimum_ms < 0:
            raise ConfigurationError("latency minimum cannot be negative")
        if not 0.0 <= self.slow_response_probability < 0.5:
            raise ConfigurationError("slow response probability must be in [0, 0.5)")
        if self.slow_multiplier < 1.0:
            raise ConfigurationError("slow multiplier must be >= 1")

    def sample(self, rng: np.random.Generator, scale: float = 1.0) -> float:
        """Draw one response latency in milliseconds.

        ``scale`` lets the caller model site-level effects (e.g. highly ranked
        publishers with better peering see systematically lower latencies).
        """
        if scale <= 0:
            raise ValueError("latency scale must be positive")
        mu = math.log(self.median_ms * scale)
        value = float(rng.lognormal(mean=mu, sigma=self.sigma))
        if self.slow_response_probability and rng.random() < self.slow_response_probability:
            value *= self.slow_multiplier
        return max(self.minimum_ms, value)

    def quantile(self, q: float, scale: float = 1.0) -> float:
        """Analytic quantile of the model (used by calibration tests)."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        from scipy.stats import norm  # local import: scipy optional elsewhere

        mu = math.log(self.median_ms * scale)
        return max(self.minimum_ms, float(math.exp(mu + self.sigma * norm.ppf(q))))


@dataclass(frozen=True)
class BidBehavior:
    """How a partner decides whether and how much to bid.

    ``bid_probability`` is the chance of returning a bid for a vanilla,
    history-less profile (the paper's crawler deliberately carries no cookies,
    which is why only ~30% of auctions receive bids at all).  ``base_cpm`` is
    the median CPM the partner bids for the reference 300x250 slot; actual
    bids scale with the slot size elasticity and facet multiplier supplied by
    the caller, with log-normal noise of shape ``cpm_sigma``.
    """

    bid_probability: float = 0.25
    base_cpm: float = 0.05
    cpm_sigma: float = 1.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.bid_probability <= 1.0:
            raise ConfigurationError("bid probability must be in [0, 1]")
        if self.base_cpm <= 0:
            raise ConfigurationError("base CPM must be positive")
        if self.cpm_sigma <= 0:
            raise ConfigurationError("CPM sigma must be positive")

    def will_bid(self, rng: np.random.Generator) -> bool:
        """Decide whether the partner bids at all for this request."""
        return bool(rng.random() < self.bid_probability)

    def sample_cpm(
        self,
        rng: np.random.Generator,
        size: AdSlotSize,
        *,
        size_multiplier: float = 1.0,
        facet_multiplier: float = 1.0,
    ) -> float:
        """Draw a bid price in CPM (USD per thousand impressions)."""
        if size_multiplier <= 0 or facet_multiplier <= 0:
            raise ValueError("CPM multipliers must be positive")
        location = self.base_cpm * size_multiplier * facet_multiplier
        mu = math.log(location)
        cpm = float(rng.lognormal(mean=mu, sigma=self.cpm_sigma))
        return round(max(cpm, 0.0001), 5)


@dataclass(frozen=True)
class PartnerResponse:
    """The outcome of sending one bid request to one partner for one slot."""

    partner: "DemandPartner"
    slot_code: str
    latency_ms: float
    bid_cpm: float | None
    size: AdSlotSize
    currency: str = "USD"

    @property
    def did_bid(self) -> bool:
        """True when the partner returned an actual bid (not a no-bid)."""
        return self.bid_cpm is not None


@dataclass(frozen=True)
class DemandPartner:
    """A named ad-tech company participating in header bidding.

    Attributes
    ----------
    name:
        Human-readable company / bidder name (e.g. ``"AppNexus"``).
    kind:
        Supply-chain role (DSP, SSP, ADX, ad server, agency).
    bidder_code:
        The short code the Prebid adapter uses (e.g. ``"appnexus"``).
    domains:
        Hostnames the partner's bid endpoints live on; the detector's
        known-partner list is built from these.
    latency:
        Response latency model.
    bidding:
        Bid decision / pricing model.
    popularity_weight:
        Relative likelihood that a publisher configures this partner.
    can_serve_ads / can_run_server_side:
        Whether the partner can act as the publisher ad server, respectively
        as the single server-side HB aggregation point.
    runs_internal_auction:
        ADX-style partners run their own RTB auction among affiliated DSPs
        before answering, which adds latency but not extra client traffic.
    """

    name: str
    kind: PartnerKind
    bidder_code: str
    domains: tuple[str, ...]
    latency: LatencyModel
    bidding: BidBehavior = field(default_factory=BidBehavior)
    popularity_weight: float = 1.0
    can_serve_ads: bool = False
    can_run_server_side: bool = False
    runs_internal_auction: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("partner name must be non-empty")
        if not self.domains:
            raise ConfigurationError(f"partner {self.name!r} needs at least one domain")
        if self.popularity_weight < 0:
            raise ConfigurationError("popularity weight cannot be negative")
        if not self.bidder_code:
            object.__setattr__(self, "bidder_code", slugify(self.name))

    @property
    def slug(self) -> str:
        """Stable lower-case identifier derived from the partner name."""
        return slugify(self.name)

    @property
    def primary_domain(self) -> str:
        return self.domains[0]

    def bid_endpoint(self) -> str:
        """The URL host+path bid requests are sent to."""
        return f"https://{self.primary_domain}/hb/bid"

    def respond(
        self,
        rng: np.random.Generator,
        slot_code: str,
        size: AdSlotSize,
        *,
        latency_scale: float = 1.0,
        size_multiplier: float = 1.0,
        facet_multiplier: float = 1.0,
    ) -> PartnerResponse:
        """Simulate the partner's answer to a single bid request.

        The returned latency already includes the partner's internal RTB
        auction, if it runs one.
        """
        latency = self.latency.sample(rng, scale=latency_scale)
        if self.runs_internal_auction:
            # An internal auction among affiliated DSPs adds a second, smaller
            # round of waiting before the partner can answer the wrapper.
            latency += self.latency.sample(rng, scale=latency_scale * 0.35)
        cpm: float | None = None
        if self.bidding.will_bid(rng):
            cpm = self.bidding.sample_cpm(
                rng,
                size,
                size_multiplier=size_multiplier,
                facet_multiplier=facet_multiplier,
            )
        return PartnerResponse(
            partner=self,
            slot_code=slot_code,
            latency_ms=latency,
            bid_cpm=cpm,
            size=size,
        )

    def describe(self) -> Mapping[str, object]:
        """Return a JSON-serialisable summary of the partner's configuration."""
        return {
            "name": self.name,
            "slug": self.slug,
            "kind": self.kind.value,
            "bidder_code": self.bidder_code,
            "domains": list(self.domains),
            "latency_median_ms": self.latency.median_ms,
            "latency_sigma": self.latency.sigma,
            "bid_probability": self.bidding.bid_probability,
            "base_cpm": self.bidding.base_cpm,
            "popularity_weight": self.popularity_weight,
            "can_serve_ads": self.can_serve_ads,
            "can_run_server_side": self.can_run_server_side,
            "runs_internal_auction": self.runs_internal_auction,
        }


def supported_facets(partner: DemandPartner) -> tuple[HBFacet, ...]:
    """Facets in which a partner can meaningfully participate.

    Every partner can be a client-side or hybrid bidder; only partners able to
    aggregate demand server-side (ad servers, large SSP/ADX) can be the single
    endpoint of a server-side deployment.
    """
    facets = [HBFacet.CLIENT_SIDE, HBFacet.HYBRID]
    if partner.can_run_server_side:
        facets.append(HBFacet.SERVER_SIDE)
    return tuple(facets)
