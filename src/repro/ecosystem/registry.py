"""Registry of demand partners participating in the simulated HB ecosystem.

The paper observes 84 unique demand partners.  The registry below contains the
named partners the paper's figures call out explicitly (top market share,
fastest, slowest, frequently-late), each with latency / bidding parameters
calibrated so that the reproduced figures match the reported shapes, plus a
long tail of additional partners generated deterministically to reach the same
ecosystem size.

The registry is data, not behaviour: partner behaviour lives in
:mod:`repro.ecosystem.partners`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError, UnknownPartnerError
from repro.models import PartnerKind
from repro.ecosystem.partners import BidBehavior, DemandPartner, LatencyModel
from repro.utils.ids import slugify
from repro.utils.rng import derive_rng

__all__ = ["PartnerRegistry", "default_registry", "NAMED_PARTNER_SPECS"]


@dataclass(frozen=True)
class _PartnerSpec:
    """Compact declarative description of one named partner."""

    name: str
    kind: PartnerKind
    domain: str
    latency_median_ms: float
    latency_sigma: float
    bid_probability: float
    base_cpm: float
    popularity_weight: float
    can_serve_ads: bool = False
    can_run_server_side: bool = False
    runs_internal_auction: bool = False
    bidder_code: str = ""
    extra_domains: tuple[str, ...] = ()
    slow_response_probability: float = 0.0

    def build(self) -> DemandPartner:
        return DemandPartner(
            name=self.name,
            kind=self.kind,
            bidder_code=self.bidder_code or slugify(self.name).replace("-", ""),
            domains=(self.domain, *self.extra_domains),
            latency=LatencyModel(
                self.latency_median_ms,
                self.latency_sigma,
                slow_response_probability=self.slow_response_probability,
            ),
            bidding=BidBehavior(
                bid_probability=self.bid_probability,
                base_cpm=self.base_cpm,
            ),
            popularity_weight=self.popularity_weight,
            can_serve_ads=self.can_serve_ads,
            can_run_server_side=self.can_run_server_side,
            runs_internal_auction=self.runs_internal_auction,
        )


# ---------------------------------------------------------------------------
# Named partners.
#
# Latency medians follow Figure 14 (fastest partners 41-217 ms, top-market
# partners ~200-450 ms, slowest partners 646-1290 ms).  Popularity weights
# follow Figure 8 (DFP ~80% of sites, then AppNexus, Rubicon, Criteo, Index,
# Amazon, OpenX, Pubmatic, AOL, Sovrn, Smart).  Base CPMs follow Figure 22-24
# (popular partners bid low and consistently; small partners bid higher with
# more variance).
# ---------------------------------------------------------------------------
NAMED_PARTNER_SPECS: tuple[_PartnerSpec, ...] = (
    # --- top market-share partners (Figure 8 / Figure 14 middle group) -----
    _PartnerSpec("DFP", PartnerKind.AD_SERVER, "doubleclick.net", 260, 0.35, 0.30, 0.030, 80.0,
                 can_serve_ads=True, can_run_server_side=True, runs_internal_auction=True,
                 bidder_code="dfp", extra_domains=("googlesyndication.com", "googletagservices.com")),
    _PartnerSpec("AppNexus", PartnerKind.ADX, "adnxs.com", 290, 0.40, 0.32, 0.034, 16.0,
                 can_run_server_side=True, runs_internal_auction=True, bidder_code="appnexus"),
    _PartnerSpec("Rubicon", PartnerKind.SSP, "rubiconproject.com", 320, 0.40, 0.33, 0.036, 13.0,
                 can_run_server_side=True, runs_internal_auction=True, bidder_code="rubicon"),
    _PartnerSpec("Criteo", PartnerKind.DSP, "criteo.com", 180, 0.38, 0.30, 0.032, 11.0,
                 can_run_server_side=True, bidder_code="criteo",
                 extra_domains=("criteo.net",)),
    _PartnerSpec("Index", PartnerKind.ADX, "indexexchange.com", 300, 0.42, 0.31, 0.035, 9.0,
                 can_run_server_side=True, runs_internal_auction=True, bidder_code="ix",
                 extra_domains=("casalemedia.com",)),
    _PartnerSpec("Amazon", PartnerKind.ADX, "amazon-adsystem.com", 340, 0.42, 0.28, 0.033, 8.0,
                 can_run_server_side=True, runs_internal_auction=True, bidder_code="amazon"),
    _PartnerSpec("OpenX", PartnerKind.SSP, "openx.net", 360, 0.44, 0.30, 0.035, 7.0,
                 can_run_server_side=True, bidder_code="openx"),
    _PartnerSpec("Pubmatic", PartnerKind.SSP, "pubmatic.com", 380, 0.44, 0.30, 0.034, 6.0,
                 can_run_server_side=True, bidder_code="pubmatic"),
    _PartnerSpec("AOL", PartnerKind.ADX, "adtechus.com", 400, 0.46, 0.27, 0.033, 5.0,
                 runs_internal_auction=True, bidder_code="aol",
                 extra_domains=("advertising.com",)),
    _PartnerSpec("Sovrn", PartnerKind.SSP, "lijit.com", 420, 0.46, 0.28, 0.034, 4.5,
                 bidder_code="sovrn"),
    _PartnerSpec("Smart", PartnerKind.SSP, "smartadserver.com", 430, 0.46, 0.27, 0.035, 4.0,
                 bidder_code="smartadserver"),
    # --- additional partners prominent in combinations / per-facet bids ----
    _PartnerSpec("Yieldlab", PartnerKind.SSP, "yieldlab.net", 170, 0.40, 0.29, 0.040, 3.2,
                 can_run_server_side=True, bidder_code="yieldlab"),
    _PartnerSpec("DistrictM", PartnerKind.SSP, "districtm.io", 390, 0.48, 0.27, 0.040, 2.8,
                 bidder_code="districtm"),
    _PartnerSpec("OftMedia", PartnerKind.SSP, "152media.com", 410, 0.50, 0.26, 0.042, 2.6,
                 bidder_code="oftmedia"),
    _PartnerSpec("bRealTime", PartnerKind.ADX, "brealtime.com", 400, 0.50, 0.26, 0.041, 2.4,
                 bidder_code="brealtime"),
    _PartnerSpec("EMX Digital", PartnerKind.ADX, "emxdgt.com", 395, 0.50, 0.26, 0.041, 2.4,
                 bidder_code="emx_digital"),
    _PartnerSpec("AdUpTech", PartnerKind.SSP, "adup-tech.com", 370, 0.50, 0.25, 0.043, 2.0,
                 bidder_code="aduptech"),
    _PartnerSpec("LiveWrapped", PartnerKind.SSP, "livewrapped.com", 365, 0.50, 0.25, 0.043, 1.8,
                 bidder_code="livewrapped"),
    # --- fastest partners (Figure 14 left group, medians 41-217 ms) --------
    _PartnerSpec("Piximedia", PartnerKind.SSP, "piximedia.com", 45, 0.35, 0.22, 0.060, 0.9,
                 bidder_code="piximedia"),
    _PartnerSpec("OneTag", PartnerKind.SSP, "onetag.com", 60, 0.35, 0.22, 0.058, 0.9,
                 bidder_code="onetag"),
    _PartnerSpec("Justpremium", PartnerKind.SSP, "justpremium.com", 80, 0.38, 0.22, 0.062, 1.0,
                 bidder_code="justpremium"),
    _PartnerSpec("StickyAdsTV", PartnerKind.SSP, "stickyadstv.com", 95, 0.38, 0.22, 0.060, 0.9,
                 bidder_code="stickyadstv"),
    _PartnerSpec("Widespace", PartnerKind.SSP, "widespace.com", 110, 0.40, 0.21, 0.063, 0.8,
                 bidder_code="widespace"),
    _PartnerSpec("Polymorph", PartnerKind.SSP, "getpolymorph.com", 130, 0.40, 0.21, 0.064, 0.8,
                 bidder_code="polymorph"),
    _PartnerSpec("Gjirafa", PartnerKind.SSP, "gjirafa.com", 175, 0.42, 0.21, 0.065, 0.7,
                 bidder_code="gjirafa"),
    _PartnerSpec("Atomx", PartnerKind.ADX, "ato.mx", 190, 0.42, 0.21, 0.066, 0.8,
                 bidder_code="atomx"),
    _PartnerSpec("Yieldbot", PartnerKind.DSP, "yldbt.com", 215, 0.42, 0.22, 0.060, 1.0,
                 bidder_code="yieldbot"),
    # --- slowest partners (Figure 14 right group, medians 646-1290 ms) -----
    _PartnerSpec("Trion", PartnerKind.SSP, "trion.com", 650, 0.60, 0.24, 0.075, 0.8,
                 bidder_code="trion"),
    _PartnerSpec("AdOcean", PartnerKind.SSP, "adocean.pl", 700, 0.62, 0.24, 0.078, 0.9,
                 bidder_code="adocean"),
    _PartnerSpec("Fidelity", PartnerKind.SSP, "fidelity-media.com", 760, 0.62, 0.23, 0.080, 0.7,
                 bidder_code="fidelity"),
    _PartnerSpec("C1X", PartnerKind.ADX, "c1exchange.com", 820, 0.64, 0.23, 0.082, 0.7,
                 bidder_code="c1x"),
    _PartnerSpec("Yieldone", PartnerKind.SSP, "yield-one.com", 880, 0.64, 0.23, 0.083, 0.7,
                 bidder_code="yieldone"),
    _PartnerSpec("Aardvark", PartnerKind.SSP, "rtk.io", 950, 0.66, 0.22, 0.085, 0.6,
                 bidder_code="aardvark"),
    _PartnerSpec("Innity", PartnerKind.SSP, "innity.com", 1020, 0.66, 0.22, 0.086, 0.6,
                 bidder_code="innity"),
    _PartnerSpec("Bridgewell", PartnerKind.SSP, "scupio.com", 1100, 0.68, 0.22, 0.088, 0.6,
                 bidder_code="bridgewell"),
    _PartnerSpec("Gamma SSP", PartnerKind.SSP, "gammaplatform.com", 1200, 0.68, 0.21, 0.090, 0.5,
                 bidder_code="gamma"),
    _PartnerSpec("Adgeneration", PartnerKind.SSP, "scaleout.jp", 1280, 0.70, 0.21, 0.092, 0.5,
                 bidder_code="adgeneration"),
    # --- partners with many late bids (Figure 18) --------------------------
    _PartnerSpec("Lifestreet", PartnerKind.DSP, "lfstmedia.com", 980, 0.75, 0.24, 0.080, 0.6,
                 bidder_code="lifestreet"),
    _PartnerSpec("AdMatic", PartnerKind.SSP, "admatic.com.tr", 940, 0.75, 0.23, 0.079, 0.6,
                 bidder_code="admatic"),
    _PartnerSpec("Consumable", PartnerKind.SSP, "serverbid.com", 900, 0.72, 0.24, 0.076, 0.7,
                 bidder_code="consumable"),
    _PartnerSpec("SpotX", PartnerKind.SSP, "spotxchange.com", 860, 0.72, 0.25, 0.074, 0.9,
                 bidder_code="spotx"),
    _PartnerSpec("FreeWheel", PartnerKind.SSP, "fwmrm.net", 830, 0.70, 0.25, 0.073, 0.8,
                 bidder_code="freewheel"),
    _PartnerSpec("LKQD", PartnerKind.SSP, "lkqd.net", 800, 0.70, 0.24, 0.072, 0.7,
                 bidder_code="lkqd"),
    _PartnerSpec("Tremor", PartnerKind.DSP, "tremorhub.com", 780, 0.70, 0.24, 0.071, 0.7,
                 bidder_code="tremor"),
    _PartnerSpec("InSkin", PartnerKind.SSP, "inskinad.com", 760, 0.68, 0.23, 0.070, 0.6,
                 bidder_code="inskin"),
    _PartnerSpec("AdKernelAdn", PartnerKind.ADX, "adkernel.com", 740, 0.68, 0.23, 0.070, 0.6,
                 bidder_code="adkerneladn"),
    _PartnerSpec("Quantum", PartnerKind.SSP, "elasticad.net", 720, 0.68, 0.23, 0.069, 0.6,
                 bidder_code="quantum"),
    _PartnerSpec("SmartyAds", PartnerKind.SSP, "smartyads.com", 700, 0.66, 0.23, 0.068, 0.6,
                 bidder_code="smartyads"),
    _PartnerSpec("Clickonometrics", PartnerKind.SSP, "clickonometrics.pl", 690, 0.66, 0.22, 0.068, 0.5,
                 bidder_code="clickonometrics"),
    _PartnerSpec("Kumma", PartnerKind.SSP, "kumma.com", 680, 0.66, 0.22, 0.067, 0.5,
                 bidder_code="kumma"),
    _PartnerSpec("E-Planning", PartnerKind.SSP, "e-planning.net", 670, 0.66, 0.22, 0.067, 0.6,
                 bidder_code="eplanning"),
    _PartnerSpec("ImproveDigital", PartnerKind.SSP, "360yield.com", 640, 0.64, 0.24, 0.066, 1.2,
                 bidder_code="improvedigital"),
)

#: Partners the paper's Figure 18 singles out for chronically late bids; their
#: backends regularly take several times longer than usual to answer, which is
#: what pushes them past wrapper timeouts on a large share of their auctions.
LATE_PRONE_PARTNERS: frozenset[str] = frozenset({
    "Lifestreet", "AdMatic", "Consumable", "SpotX", "FreeWheel", "LKQD", "Tremor",
    "InSkin", "AdKernelAdn", "Quantum", "SmartyAds", "Clickonometrics", "Kumma",
    "E-Planning", "ImproveDigital", "Atomx", "Piximedia", "Justpremium",
})

#: Probability of an overloaded (multi-second) response for late-prone partners.
_SLOW_BURST_PROBABILITY: float = 0.45

# Long-tail partner names used to complete the 84-partner universe.  These are
# real Prebid adapters but the paper does not report per-partner parameters
# for them, so they all share moderate defaults with small deterministic
# jitter applied in :func:`default_registry`.
_LONG_TAIL_NAMES: tuple[str, ...] = (
    "33Across", "Sharethrough", "TripleLift", "Teads", "Unruly", "GumGum",
    "Sonobi", "Conversant", "MediaNet", "RhythmOne", "Undertone", "Nativo",
    "Outbrain", "Taboola", "Adform", "Beachfront", "Kargo", "Sortable",
    "Vertamedia", "AdYouLike", "Vidazoo", "Cedato", "MarsMedia", "Somoaudience",
    "AdMixer", "Between", "Bidfluence", "BuzzoolaAds", "Carambola", "Cinemad",
    "Cointraffic", "Colossus", "ConnectAd", "Datablocks", "DecenterAds",
    "Engageya",
)


class PartnerRegistry:
    """Ordered, name-addressable collection of demand partners.

    The registry is the single source of truth for which partners exist in the
    simulated ecosystem.  The detector's known-partner list is *derived* from a
    registry (optionally with omissions, to study recall), never shared with it
    directly.
    """

    def __init__(self, partners: Iterable[DemandPartner]) -> None:
        self._partners: list[DemandPartner] = list(partners)
        if not self._partners:
            raise ConfigurationError("a partner registry cannot be empty")
        self._by_slug = {partner.slug: partner for partner in self._partners}
        self._by_bidder_code = {partner.bidder_code: partner for partner in self._partners}
        if len(self._by_slug) != len(self._partners):
            raise ConfigurationError("partner names must be unique within a registry")

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._partners)

    def __iter__(self) -> Iterator[DemandPartner]:
        return iter(self._partners)

    def __contains__(self, name: str) -> bool:
        return slugify(name) in self._by_slug or name in self._by_bidder_code

    # -- lookup --------------------------------------------------------------
    def get(self, name: str) -> DemandPartner:
        """Look a partner up by display name, slug or bidder code."""
        slug = slugify(name)
        if slug in self._by_slug:
            return self._by_slug[slug]
        if name in self._by_bidder_code:
            return self._by_bidder_code[name]
        raise UnknownPartnerError(name)

    def by_bidder_code(self, code: str) -> DemandPartner:
        if code not in self._by_bidder_code:
            raise UnknownPartnerError(code)
        return self._by_bidder_code[code]

    @property
    def partners(self) -> tuple[DemandPartner, ...]:
        return tuple(self._partners)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(partner.name for partner in self._partners)

    @property
    def domains(self) -> tuple[str, ...]:
        """Every bid-endpoint domain known to the ecosystem."""
        seen: list[str] = []
        for partner in self._partners:
            for domain in partner.domains:
                if domain not in seen:
                    seen.append(domain)
        return tuple(seen)

    # -- selections ----------------------------------------------------------
    def ad_servers(self) -> tuple[DemandPartner, ...]:
        return tuple(p for p in self._partners if p.can_serve_ads)

    def server_side_capable(self) -> tuple[DemandPartner, ...]:
        return tuple(p for p in self._partners if p.can_run_server_side)

    def popularity_weights(self) -> np.ndarray:
        return np.asarray([p.popularity_weight for p in self._partners], dtype=float)

    def subset(self, names: Sequence[str]) -> "PartnerRegistry":
        """A new registry restricted to the given partner names."""
        return PartnerRegistry([self.get(name) for name in names])

    def describe(self) -> list[dict[str, object]]:
        return [dict(partner.describe()) for partner in self._partners]


def _long_tail_partner(name: str, index: int, seed: int) -> DemandPartner:
    """Build one long-tail partner with deterministic parameter jitter."""
    rng = derive_rng(seed, "long-tail-partner", name)
    median = float(rng.uniform(250, 620))
    sigma = float(rng.uniform(0.45, 0.62))
    bid_probability = float(rng.uniform(0.16, 0.28))
    base_cpm = float(rng.uniform(0.045, 0.095))
    weight = float(rng.uniform(0.15, 0.55))
    domain = f"{slugify(name)}.com"
    return DemandPartner(
        name=name,
        kind=PartnerKind.SSP if index % 3 else PartnerKind.DSP,
        bidder_code=slugify(name).replace("-", ""),
        domains=(domain,),
        latency=LatencyModel(median, sigma),
        bidding=BidBehavior(bid_probability=bid_probability, base_cpm=base_cpm),
        popularity_weight=weight,
    )


def default_registry(seed: int = 2019, total_partners: int = 84) -> PartnerRegistry:
    """Build the default 84-partner ecosystem used throughout the paper repro.

    ``total_partners`` may be lowered for fast unit tests; it cannot drop below
    the number of named partners.
    """
    named = []
    for spec in NAMED_PARTNER_SPECS:
        if spec.name in LATE_PRONE_PARTNERS:
            spec = replace(spec, slow_response_probability=_SLOW_BURST_PROBABILITY)
        named.append(spec.build())
    if total_partners < len(named):
        return PartnerRegistry(named[:total_partners])
    remaining = total_partners - len(named)
    if remaining > len(_LONG_TAIL_NAMES):
        raise ConfigurationError(
            f"cannot build a registry of {total_partners} partners: "
            f"only {len(NAMED_PARTNER_SPECS) + len(_LONG_TAIL_NAMES)} names available"
        )
    tail = [
        _long_tail_partner(name, index, seed)
        for index, name in enumerate(_LONG_TAIL_NAMES[:remaining])
    ]
    return PartnerRegistry(named + tail)
