"""Continuous-recrawl daemon: grow a campaign one crawl day per tick.

The paper's measurement is longitudinal — a discovery pass, then a daily
re-crawl of the HB sites for weeks.  :class:`RecrawlDaemon` turns the
one-shot runner into that continuously-running rig: each :meth:`~RecrawlDaemon.tick`
appends exactly one crawl-day partition to a long-lived campaign through the
existing checkpoint/sink machinery (resume makes completed days a no-op
replan, so a tick only ever crawls the net-new day), recomputes the
registered metrics over the finished day, diffs them against the previous
day's snapshot, and emits structured regression alerts.

Workdir layout (everything the daemon owns lives under one directory)::

    workdir/
      detections.hbc | detections.jsonl   canonical sink (never pruned)
      crawl.ckpt                          crash-safe campaign checkpoint
      daemon.json                         the daemon's recorded knobs
      metrics/day-00002.json              per-day flattened metric snapshot
      partitions/day-00002.hbc            per-day detection partition
      alerts.jsonl                        append-only regression alert log

Byte-identity is inherited, not re-proven: the sink a daemon grows over N
ticks is byte-identical to a one-shot ``run`` with ``recrawl_days=N``,
because every tick is just a checkpointed resume with an extended horizon
(see ``EXTENSIBLE_FINGERPRINT_KEYS`` in :mod:`repro.crawler.checkpoint`).
A kill at any instant — mid-day included — is recovered by the next tick
exactly like any interrupted crawl.

Alert rules are little threshold expressions, ``metric.field:kind=value``
(see :func:`parse_rules`), evaluated over the *flattened* metric data — every
numeric leaf of a :class:`~repro.analysis.registry.MetricResult`'s ``data``
mapping keyed by its dotted path, e.g. ``table1.summary.websites_with_hb``.
``drop`` compares a day against the previous day; ``min``/``max`` are
absolute floors/ceilings.  Days 0 (discovery, full population) and 1 (first
HB-only re-crawl) are structurally different populations, so rules fire from
day 2 onward, where consecutive days are comparable.  Alerts are appended to
``alerts.jsonl`` exactly once per (day, rule): a restarted daemon re-derives
snapshots it lost but never duplicates an alert already logged.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.analysis.context import AnalysisContext
from repro.analysis.dataset import CrawlDataset
from repro.analysis.registry import compute_metric, get_metric
from repro.crawler.checkpoint import CrawlCheckpoint
from repro.crawler.colstore import storage_for
from repro.crawler.storage import CrawlStorage
from repro.errors import AnalysisError, ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner

__all__ = [
    "ALERT_KINDS",
    "FAILED_TICK_BACKOFF_BASE",
    "FAILED_TICK_BACKOFF_CAP",
    "AlertRule",
    "RecrawlDaemon",
    "TickReport",
    "evaluate_rules",
    "flatten_metric_data",
    "parse_rule",
    "parse_rules",
]

#: Supported threshold kinds: ``drop`` (relative drop vs the previous day
#: exceeds the value), ``min`` (current value below the floor), ``max``
#: (current value above the ceiling).
ALERT_KINDS = ("drop", "min", "max")

#: The first crawl day rules are evaluated on.  Day 0 is the discovery pass
#: over the whole population and day 1 the first HB-only re-crawl — different
#: populations, so a day-over-day diff only becomes meaningful at day 2.
FIRST_COMPARABLE_DAY = 2

#: Sequences longer than this are skipped when flattening metric data —
#: ECDF curves and rank lists are plot data, not alertable scalars, and
#: flattening them would bloat every snapshot.
_MAX_FLATTEN_SEQUENCE = 128

_SINK_NAMES = {"jsonl": "detections.jsonl", "columnar": "detections.hbc"}
_PARTITION_SUFFIX = {"jsonl": "jsonl", "columnar": "hbc"}


# ---------------------------------------------------------------------------
# Alert rules


@dataclass(frozen=True)
class AlertRule:
    """One metric-regression threshold.

    ``metric`` is a registered metric name, ``field`` a dotted path into its
    flattened data (see :func:`flatten_metric_data`), ``kind`` one of
    :data:`ALERT_KINDS` and ``value`` the threshold.
    """

    metric: str
    field: str
    kind: str
    value: float

    @property
    def spec(self) -> str:
        return f"{self.metric}.{self.field}:{self.kind}={self.value:g}"


def parse_rule(spec: str) -> AlertRule:
    """Parse one ``metric.field:kind=value`` threshold expression."""
    head, sep, tail = spec.partition(":")
    if not sep:
        raise ConfigurationError(
            f"malformed threshold {spec!r}: expected metric.field:kind=value "
            f"(e.g. table1.summary.websites_with_hb:drop=0.25)"
        )
    kind, sep, raw_value = tail.partition("=")
    kind = kind.strip()
    if not sep or kind not in ALERT_KINDS:
        raise ConfigurationError(
            f"malformed threshold {spec!r}: kind must be one of "
            f"{', '.join(ALERT_KINDS)} followed by =value"
        )
    metric, sep, field_path = head.partition(".")
    if not sep or not metric or not field_path:
        raise ConfigurationError(
            f"malformed threshold {spec!r}: the target must be "
            f"metric.field (a dotted path into the metric's data)"
        )
    try:
        value = float(raw_value)
    except ValueError:
        raise ConfigurationError(
            f"malformed threshold {spec!r}: {raw_value!r} is not a number"
        ) from None
    if kind == "drop" and not 0.0 < value <= 1.0:
        raise ConfigurationError(
            f"threshold {spec!r}: a drop threshold is a relative fraction "
            f"in (0, 1], got {value:g}"
        )
    return AlertRule(metric=metric, field=field_path.strip(), kind=kind, value=value)


def parse_rules(specs: Iterable[str]) -> tuple[AlertRule, ...]:
    """Parse a sequence of threshold expressions."""
    return tuple(parse_rule(spec) for spec in specs)


def flatten_metric_data(data: Mapping, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf of a metric's data mapping, keyed by dotted path.

    Nested mappings recurse; sequences recurse by index but are skipped
    beyond :data:`_MAX_FLATTEN_SEQUENCE` elements (ECDF curves are plot
    data, not alertable scalars).  Booleans flatten to 0/1; strings and
    other non-numeric leaves are dropped.
    """
    flat: dict[str, float] = {}
    for key, value in data.items():
        name = str(getattr(key, "value", key))
        path = f"{prefix}{name}"
        _flatten_value(value, path, flat)
    return flat


def _flatten_value(value: object, path: str, flat: dict[str, float]) -> None:
    if isinstance(value, Mapping):
        for key, inner in value.items():
            name = str(getattr(key, "value", key))
            _flatten_value(inner, f"{path}.{name}", flat)
    elif isinstance(value, (list, tuple)):
        if len(value) <= _MAX_FLATTEN_SEQUENCE:
            for index, inner in enumerate(value):
                _flatten_value(inner, f"{path}.{index}", flat)
    elif isinstance(value, bool):
        flat[path] = float(value)
    elif isinstance(value, (int, float)):
        flat[path] = float(value)
    elif hasattr(value, "item"):  # numpy scalar
        try:
            flat[path] = float(value.item())
        except (TypeError, ValueError):  # pragma: no cover - exotic dtypes
            pass


def evaluate_rules(
    rules: Sequence[AlertRule],
    previous: Mapping[str, Mapping[str, float]],
    current: Mapping[str, Mapping[str, float]],
    *,
    day: int,
) -> list[dict]:
    """Evaluate thresholds for ``day`` against the previous day's snapshot.

    ``previous`` and ``current`` map metric name → flattened data.  A rule
    whose field is absent from the snapshots is skipped (the metric may
    legitimately omit a key on an empty day); everything that fires becomes
    a structured alert record.
    """
    alerts: list[dict] = []
    for rule in rules:
        cur = current.get(rule.metric, {}).get(rule.field)
        prev = previous.get(rule.metric, {}).get(rule.field)
        if cur is None:
            continue
        fired = False
        detail: dict = {}
        if rule.kind == "drop":
            if prev is None or prev <= 0:
                continue
            rel_drop = (prev - cur) / prev
            fired = rel_drop > rule.value
            detail = {"relative_drop": rel_drop}
        elif rule.kind == "min":
            fired = cur < rule.value
        elif rule.kind == "max":
            fired = cur > rule.value
        if not fired:
            continue
        alerts.append(
            {
                "day": day,
                "baseline_day": day - 1,
                "metric": rule.metric,
                "field": rule.field,
                "kind": rule.kind,
                "threshold": rule.value,
                "previous": prev,
                "current": cur,
                "rule": rule.spec,
                **detail,
                "message": (
                    f"day {day}: {rule.metric}.{rule.field}={cur:g} violates "
                    f"{rule.kind}={rule.value:g} (day {day - 1}: "
                    f"{'-' if prev is None else format(prev, 'g')})"
                ),
            }
        )
    return alerts


# ---------------------------------------------------------------------------
# The daemon


#: Base/cap for the exponential backoff between failed ticks: the first
#: retry waits at least the base (even with ``interval=0``), each further
#: consecutive failure doubles the wait up to the cap.
FAILED_TICK_BACKOFF_BASE = 1.0
FAILED_TICK_BACKOFF_CAP = 300.0


@dataclass(frozen=True)
class TickReport:
    """What one daemon tick did."""

    #: ``"bootstrapped"`` (discovery pass ran), ``"advanced"`` (a crawl day
    #: was appended or completed), ``"complete"`` (the target horizon is
    #: already recorded; nothing ran) or ``"failed"`` (the tick errored or
    #: completed degraded; see :attr:`error` — the campaign stays
    #: checkpointed and the next tick resumes it).
    status: str
    #: The crawl day this tick produced (``None`` when complete or failed
    #: before a day was targeted).
    day: int | None
    #: The campaign's recorded day horizon after the tick.
    horizon: int
    #: Total detections in the sink after the tick.
    detections: int
    #: Alerts appended to the log by this tick.
    alerts: list[dict] = field(default_factory=list)
    #: Days whose metric snapshots this tick wrote (restart catch-up included).
    snapshot_days: list[int] = field(default_factory=list)
    #: What went wrong, for ``"failed"`` ticks.
    error: str | None = None


class RecrawlDaemon:
    """Grows one long-lived campaign a crawl day at a time.

    ``config`` describes the campaign (population size, seed, store format,
    parallelism); its ``recrawl_days``/``checkpoint_path``/``resume`` fields
    are managed by the daemon itself and overridden per tick.  ``metrics``
    names the registered metrics snapshotted after each day (dataset-only
    metrics — the daemon analyses the day's detections offline), ``rules``
    the regression thresholds over them, ``target_days`` the horizon at
    which :meth:`run` stops (``None`` = keep growing until stopped), and
    ``retention_days`` how many trailing days keep their per-day partition
    and snapshot files (the canonical sink and alert log are never pruned).

    ``storage_factory`` injects the sink storage (the campaign service wires
    its cancellable wrappers through here); the default is plain
    :func:`~repro.crawler.colstore.storage_for`.
    """

    def __init__(
        self,
        workdir: str | Path,
        config: ExperimentConfig,
        *,
        metrics: Sequence[str] = ("table1",),
        rules: Sequence[AlertRule] = (),
        target_days: int | None = None,
        retention_days: int | None = None,
        storage_factory: Callable[[Path, str], CrawlStorage] | None = None,
    ) -> None:
        if target_days is not None and target_days < 0:
            raise ConfigurationError("target_days cannot be negative")
        if retention_days is not None and retention_days < 1:
            raise ConfigurationError("retention_days must be at least 1")
        if not metrics:
            raise ConfigurationError("the daemon needs at least one metric to watch")
        for name in metrics:
            metric = get_metric(name)  # raises UnknownMetricError
            extra = set(metric.requires) - {"dataset"}
            if extra:
                raise ConfigurationError(
                    f"metric {name!r} needs {sorted(extra)} beyond the dataset; "
                    f"the daemon recomputes metrics offline over the day's "
                    f"detections, so only dataset-only metrics can be watched"
                )
        watched = set(metrics)
        for rule in rules:
            if rule.metric not in watched:
                raise ConfigurationError(
                    f"threshold {rule.spec!r} targets metric {rule.metric!r} "
                    f"which is not watched; add it to the daemon's metrics"
                )
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.config = replace(config, checkpoint_path=None, resume=False)
        self.metrics = tuple(metrics)
        self.rules = tuple(rules)
        self.target_days = target_days
        self.retention_days = retention_days
        self._storage_factory = storage_factory or (
            lambda path, fmt: storage_for(path, format=fmt)
        )
        self.sink_path = self.workdir / _SINK_NAMES[config.store_format]
        self.checkpoint_path = self.workdir / "crawl.ckpt"
        self.metrics_dir = self.workdir / "metrics"
        self.partitions_dir = self.workdir / "partitions"
        self.alert_log = self.workdir / "alerts.jsonl"
        self.fault_log_path = self.workdir / "faults.jsonl"
        if self.sink_path.exists() and not self.checkpoint_path.exists():
            raise ConfigurationError(
                f"{self.workdir} holds a detection sink but no checkpoint; "
                f"refusing to overwrite it — point the daemon at a fresh "
                f"directory or restore the campaign's crawl.ckpt"
            )
        self._write_manifest()

    # -- state views -------------------------------------------------------------
    def recorded_state(self) -> tuple[int, bool] | None:
        """``(last recorded crawl day, finished?)`` or ``None`` pre-bootstrap."""
        if not self.checkpoint_path.exists():
            return None
        checkpoint = CrawlCheckpoint.load(self.checkpoint_path)
        if not checkpoint.phases:
            return None
        last = checkpoint.phases[-1]
        return last.crawl_day, last.done

    def next_target(self) -> tuple[int, bool] | None:
        """``(target recrawl_days, resume?)`` for the next tick.

        ``None`` means the campaign already reached ``target_days`` and the
        next tick is a no-op.  An unfinished last day is re-targeted (the
        tick completes it); otherwise the horizon grows by one.
        """
        state = self.recorded_state()
        if state is None:
            return 0, False
        last_day, finished = state
        if not finished:
            return last_day, True
        if self.target_days is not None and last_day >= self.target_days:
            return None
        return last_day + 1, True

    # -- the tick ---------------------------------------------------------------
    def tick(self) -> TickReport:
        """Advance the campaign by (at most) one crawl day.

        Bootstraps the discovery pass on the first call, completes an
        interrupted day if the previous tick was killed mid-crawl, appends
        the next day otherwise, then writes metric snapshots and per-day
        partitions for every recorded day that is missing one, evaluates
        the alert rules, and applies the retention policy.
        """
        target = self.next_target()
        if target is None:
            state = self.recorded_state()
            horizon = state[0] if state else 0
            return TickReport(
                status="complete",
                day=None,
                horizon=horizon,
                detections=self._sink_detections(),
            )
        days, resume = target
        config = replace(
            self.config,
            recrawl_days=days,
            checkpoint_path=str(self.checkpoint_path),
            resume=resume,
            fault_log=self.config.fault_log or str(self.fault_log_path),
        )
        storage = self._storage_factory(self.sink_path, config.store_format)
        artifacts = ExperimentRunner(config).run(use_cache=False, storage=storage)
        if artifacts.longitudinal.degraded:
            # The last phase quarantined shards, so its detections are a
            # prefix: skip its snapshot/partition (the day is not done) and
            # report a failed tick.  The quarantine lives in the checkpoint,
            # so the next tick resumes exactly the missing shards.
            results = [
                artifacts.longitudinal.discovery,
                *artifacts.longitudinal.daily_results,
            ]
            quarantined = sum(len(r.quarantined_shards) for r in results)
            alerts, snapshot_days = self._record_days(artifacts, skip_last=True)
            return TickReport(
                status="failed",
                day=days,
                horizon=days,
                detections=len(artifacts.dataset),
                alerts=alerts,
                snapshot_days=snapshot_days,
                error=(
                    f"day {days} completed degraded: {quarantined} shard(s) "
                    f"quarantined after exhausting retries"
                ),
            )
        alerts, snapshot_days = self._record_days(artifacts)
        self._prune(last_day=days)
        return TickReport(
            status="bootstrapped" if days == 0 else "advanced",
            day=days,
            horizon=days,
            detections=len(artifacts.dataset),
            alerts=alerts,
            snapshot_days=snapshot_days,
        )

    def run(
        self,
        *,
        max_ticks: int | None = None,
        interval: float = 0.0,
        stop_event=None,
        on_tick: Callable[[TickReport], None] | None = None,
    ) -> list[TickReport]:
        """Tick until the target horizon, ``max_ticks``, or ``stop_event``.

        ``interval`` seconds pass between ticks (interruptibly, when a
        ``stop_event`` is given).  ``on_tick`` sees every report as it
        lands — the CLI prints them live through this.

        A tick that raises (or completes degraded) does not kill the loop:
        it becomes a ``"failed"`` :class:`TickReport` and the loop backs off
        exponentially — ``min(cap, max(interval, base) * 2**(failures-1))``
        seconds after the *failures*-th consecutive failure — before
        retrying the same day from its checkpoint.  One successful tick
        resets the backoff.  ``KeyboardInterrupt`` still propagates (Ctrl-C
        / SIGTERM stop the daemon, they are not faults).
        """
        reports: list[TickReport] = []
        consecutive_failures = 0
        while max_ticks is None or len(reports) < max_ticks:
            try:
                report = self.tick()
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 - the daemon outlives one bad tick
                state = None
                try:
                    state = self.recorded_state()
                    detections = self._sink_detections()
                except Exception:  # noqa: BLE001 - e.g. a corrupt checkpoint
                    detections = 0
                report = TickReport(
                    status="failed",
                    day=None,
                    horizon=state[0] if state else 0,
                    detections=detections,
                    error=f"{type(exc).__name__}: {exc}",
                )
            if report.status == "failed":
                consecutive_failures += 1
            else:
                consecutive_failures = 0
            reports.append(report)
            if on_tick is not None:
                on_tick(report)
            if report.status == "complete":
                break
            if (
                report.status != "failed"
                and self.target_days is not None
                and report.day is not None
                and report.day >= self.target_days
            ):
                break
            delay = interval
            if consecutive_failures:
                delay = min(
                    FAILED_TICK_BACKOFF_CAP,
                    max(interval, FAILED_TICK_BACKOFF_BASE)
                    * 2 ** (consecutive_failures - 1),
                )
            if stop_event is not None:
                if stop_event.wait(delay):
                    break
            elif delay > 0:
                time.sleep(delay)
        return reports

    # -- snapshots, partitions, alerts ------------------------------------------
    def _record_days(self, artifacts, *, skip_last: bool = False) -> tuple[list[dict], list[int]]:
        """Snapshot + partition every recorded day missing them; alert on new days.

        ``skip_last`` leaves the final day unrecorded — a degraded phase's
        detections are a truncated prefix, and writing its snapshot (the
        day's "recorded" marker) would stop the resumed, completed day from
        ever being snapshotted.
        """
        longitudinal = artifacts.longitudinal
        per_day = [list(longitudinal.discovery.detections)]
        per_day.extend(list(r.detections) for r in longitudinal.daily_results)
        if skip_last:
            per_day = per_day[:-1]
        alerted = self._alerted_days()
        emitted: list[dict] = []
        snapshot_days: list[int] = []
        previous: dict | None = None
        for day, detections in enumerate(per_day):
            snapshot = self._load_snapshot(day)
            if snapshot is None:
                snapshot = self._snapshot_day(day, detections)
                snapshot_days.append(day)
                self._write_partition(day, detections)
                if day >= FIRST_COMPARABLE_DAY and day not in alerted:
                    baseline = (
                        previous
                        if previous is not None and previous["day"] == day - 1
                        else self._load_snapshot(day - 1)
                    )
                    if baseline is not None:
                        alerts = evaluate_rules(
                            self.rules,
                            baseline["metrics"],
                            snapshot["metrics"],
                            day=day,
                        )
                        if alerts:
                            self._append_alerts(alerts)
                            emitted.extend(alerts)
                self._write_snapshot(day, snapshot)
            previous = snapshot
        return emitted, snapshot_days

    def _snapshot_day(self, day: int, detections: list) -> dict:
        dataset = CrawlDataset.from_detections(detections, label=f"day-{day:05d}")
        context = AnalysisContext.offline(dataset)
        flat: dict[str, dict[str, float]] = {}
        for name in self.metrics:
            try:
                result = compute_metric(name, context)
            except AnalysisError:
                # An empty day (e.g. a population with no HB sites) has no
                # metrics; record the day with no fields rather than dying.
                flat[name] = {}
            else:
                flat[name] = flatten_metric_data(result.data)
        return {"day": day, "detections": len(detections), "metrics": flat}

    def _snapshot_path(self, day: int) -> Path:
        return self.metrics_dir / f"day-{day:05d}.json"

    def _partition_path(self, day: int) -> Path:
        suffix = _PARTITION_SUFFIX[self.config.store_format]
        return self.partitions_dir / f"day-{day:05d}.{suffix}"

    def _load_snapshot(self, day: int) -> dict | None:
        path = self._snapshot_path(day)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def _write_snapshot(self, day: int, snapshot: dict) -> None:
        # The snapshot is the day's "recorded" marker, so it is written last
        # (after the partition and any alerts) and atomically — a kill
        # between any two steps re-derives the day on the next tick.
        path = self._snapshot_path(day)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, sort_keys=True, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _write_partition(self, day: int, detections: list) -> None:
        path = self._partition_path(day)
        path.parent.mkdir(parents=True, exist_ok=True)
        storage_for(path, format=self.config.store_format).save(detections)

    def _alerted_days(self) -> set[int]:
        days: set[int] = set()
        for record in self.read_alerts():
            if isinstance(record.get("day"), int):
                days.add(record["day"])
        return days

    def _append_alerts(self, alerts: list[dict]) -> None:
        stamp = time.time()
        with self.alert_log.open("a", encoding="utf-8") as handle:
            for alert in alerts:
                alert.setdefault("ts", stamp)
                handle.write(json.dumps(alert, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def read_alerts(self) -> list[dict]:
        """Every alert recorded so far, in emission order.

        Only whole (newline-terminated) lines are considered: a daemon
        killed mid-append can leave a torn final line — possibly cut
        mid-UTF-8-codepoint — which belongs to no alert yet.  Each complete
        line decodes and parses independently, so one bad record never hides
        the rest.
        """
        try:
            raw = self.alert_log.read_bytes()
        except OSError:
            return []
        end = raw.rfind(b"\n")
        if end < 0:
            return []
        records = []
        for line in raw[: end + 1].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue  # a torn or corrupt record from a kill mid-append
        return records

    # -- retention ---------------------------------------------------------------
    def _prune(self, *, last_day: int) -> None:
        """Drop per-day partition + snapshot files outside the retention window.

        Keeps the trailing ``retention_days`` days and always at least the
        last two (the next tick's regression diff needs the previous day's
        snapshot).  The canonical sink, checkpoint and alert log are never
        touched — they are what resume and byte-identity are built on.
        """
        if self.retention_days is None:
            return
        floor = min(last_day - self.retention_days, last_day - 2)
        for day in range(0, floor + 1):
            self._partition_path(day).unlink(missing_ok=True)
            self._snapshot_path(day).unlink(missing_ok=True)

    # -- bookkeeping -------------------------------------------------------------
    def _sink_detections(self) -> int:
        if not self.checkpoint_path.exists():
            return 0
        checkpoint = CrawlCheckpoint.load(self.checkpoint_path)
        return sum(phase.n_detections for phase in checkpoint.phases)

    def _write_manifest(self) -> None:
        manifest = {
            "config": {
                "total_sites": self.config.total_sites,
                "seed": self.config.seed,
                "store_format": self.config.store_format,
                "workers": self.config.workers,
                "crawl_backend": self.config.crawl_backend,
            },
            "metrics": list(self.metrics),
            "rules": [rule.spec for rule in self.rules],
            "target_days": self.target_days,
            "retention_days": self.retention_days,
        }
        path = self.workdir / "daemon.json"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(manifest, sort_keys=True, indent=2), encoding="utf-8")
        os.replace(tmp, path)
