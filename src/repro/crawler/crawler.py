"""The main crawl driver.

Given a publisher population (the simulated Web), the crawler visits each
site with a clean-slate session, runs HBDetector on every page load, handles
page-load timeouts by killing and restarting the session, and returns the
per-site detections together with crawl bookkeeping.

:class:`Crawler` is a thin facade over
:class:`repro.crawler.engine.CrawlEngine`: the engine shards the site list,
fans shards out to the configured execution backend (serial by default) and
merges results in canonical order, so ``CrawlConfig(workers=8,
backend="process")`` parallelises any existing caller without code changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro.detector.detector import HBDetector
from repro.detector.records import SiteDetection
from repro.ecosystem.publishers import Publisher, PublisherPopulation
from repro.errors import ConfigurationError
from repro.hb.environment import AuctionEnvironment

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.crawler.checkpoint import CrawlCheckpointer
    from repro.crawler.engine import CrawlEngine, DetectionSinkLike, ExecutionBackend

__all__ = ["CrawlConfig", "CrawlResult", "ShardFailure", "Crawler", "BACKEND_NAMES"]

#: Names accepted by :attr:`CrawlConfig.backend`; the backend implementations
#: live in :mod:`repro.crawler.engine`, which re-exports this tuple.
BACKEND_NAMES = ("serial", "thread", "process")


@dataclass(frozen=True)
class CrawlConfig:
    """Operational parameters of a crawl (mirrors §3.2 of the paper)."""

    seed: int = 2019
    page_load_timeout_ms: float = 60_000.0
    extra_dwell_ms: float = 5_000.0
    #: Restart the browser session after this many pages even without a
    #: timeout, bounding state accumulation (defensive; the paper restarts
    #: per page, which corresponds to ``1``).
    restart_every_pages: int = 1
    #: Number of parallel crawl workers (shards). ``1`` reproduces the
    #: paper's strictly sequential crawl; higher values shard the site list.
    workers: int = 1
    #: Execution backend: ``"serial"``, ``"thread"`` or ``"process"``.
    #: Detections (plus ``pages_visited`` and ``timed_out_domains``) are
    #: byte-identical across backends and worker counts; only
    #: ``sessions_started`` may differ when ``restart_every_pages > 1``,
    #: since sessions never span shard boundaries.
    backend: str = "serial"
    #: Persist the crawl checkpoint every N completed shard boundaries
    #: (``1`` = at every boundary).  Purely operational: a larger interval
    #: writes fewer checkpoint files at the cost of re-crawling more shards
    #: after a crash; resumed bytes are identical for any value.
    checkpoint_every_shards: int = 1
    #: Use precompiled site profiles and per-worker scratch buffers for page
    #: simulation.  ``False`` selects the slow reference path that re-derives
    #: every per-page input; detections are byte-identical either way (the
    #: fast-path equivalence tests enforce it).
    fast_path: bool = True
    #: Simulate whole shards as numpy arrays (the columnar path) instead of
    #: page-at-a-time objects.  Only takes effect together with
    #: :attr:`fast_path` (the columnar compiler layers on the precompiled
    #: site profiles); detections are byte-identical either way, the
    #: columnar path is simply several times faster per page.
    batch_sim: bool = True
    #: Parallel crawls (``workers > 1``) split the site list into
    #: ``workers * shard_oversubscribe`` shards so that pool workers stay
    #: busy despite the rank-correlated cost skew (high-rank shards carry
    #: more HB sites and cost several times more than tail shards).  A
    #: sequential crawl always uses a single shard.  Detections are
    #: byte-identical for any value; only scheduling granularity changes.
    shard_oversubscribe: int = 4
    #: Supervision: how many times a failed shard attempt is retried before
    #: the shard is quarantined (or, with :attr:`quarantine` off, the crawl
    #: aborts).  Because shard simulation is deterministic, a retried shard
    #: reproduces exactly the bytes the failed attempt would have produced —
    #: supervision never changes output, only availability.
    shard_retries: int = 2
    #: Per-attempt wall-clock budget in seconds for pool backends (``None``
    #: disables).  A timed-out attempt's future is abandoned (a hung worker
    #: keeps its slot until it wakes) and the shard is retried/quarantined
    #: under the normal policy.  Not enforceable on the serial backend, which
    #: runs shards in the calling thread.
    shard_timeout: float | None = None
    #: Base backoff in seconds between retry attempts; attempt *n* waits
    #: ``retry_backoff * 2**(n-1)`` scaled by a deterministic jitter factor
    #: in ``[0.5, 1.0)`` derived from ``(seed, shard, attempt)``.  Also the
    #: policy used for transient sink-write retries.
    retry_backoff: float = 0.1
    #: After a shard exhausts its retries, quarantine it and complete the
    #: crawl degraded (quarantined shards are recorded in the checkpoint and
    #: re-crawlable via resume) instead of aborting the whole campaign.
    quarantine: bool = True
    #: Optional path of a JSON-lines supervision event log (retries, pool
    #: rebuilds, quarantines, sink retries).  Written best-effort by the
    #: parent process; the service tails it into SSE ``fault`` events.
    fault_log: str | None = None

    def __post_init__(self) -> None:
        if self.page_load_timeout_ms <= 0:
            raise ConfigurationError("page load timeout must be positive")
        if self.extra_dwell_ms < 0:
            raise ConfigurationError("extra dwell cannot be negative")
        if self.restart_every_pages < 1:
            raise ConfigurationError("restart_every_pages must be >= 1")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.checkpoint_every_shards < 1:
            raise ConfigurationError("checkpoint_every_shards must be >= 1")
        if self.shard_oversubscribe < 1:
            raise ConfigurationError("shard_oversubscribe must be >= 1")
        if self.backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of {', '.join(BACKEND_NAMES)}"
            )
        if self.shard_retries < 0:
            raise ConfigurationError("shard_retries cannot be negative")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ConfigurationError("shard_timeout must be positive (or None)")
        if self.retry_backoff < 0:
            raise ConfigurationError("retry_backoff cannot be negative")


@dataclass(frozen=True)
class ShardFailure:
    """One shard quarantined after exhausting its retry budget.

    Carries everything an operator needs to triage and re-run: the shard's
    position in the plan, the last error, how many attempts were burned, and
    the domains the shard covers.  JSON-able via :meth:`to_dict` so it can be
    persisted in checkpoints and served by the campaign API.
    """

    shard_index: int
    error: str
    attempts: int
    domains: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "shard": self.shard_index,
            "error": self.error,
            "attempts": self.attempts,
            "domains": list(self.domains),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ShardFailure":
        return cls(
            shard_index=int(data["shard"]),
            error=str(data["error"]),
            attempts=int(data["attempts"]),
            domains=tuple(str(d) for d in data.get("domains", ())),
        )


@dataclass
class CrawlResult:
    """Outcome of crawling a list of sites once."""

    detections: list[SiteDetection] = field(default_factory=list)
    timed_out_domains: list[str] = field(default_factory=list)
    pages_visited: int = 0
    sessions_started: int = 0
    #: Supervision bookkeeping: shard attempts retried, worker pools rebuilt
    #: after a dead worker, transient sink writes retried.  All zero on a
    #: fault-free run; never part of the byte-identity surface.
    retries: int = 0
    pool_rebuilds: int = 0
    sink_retries: int = 0
    #: Shards that exhausted their retry budget; non-empty means the crawl
    #: completed *degraded* — its detections cover only the shards before
    #: the first quarantined index, and a resume re-crawls the rest.
    quarantined_shards: tuple[ShardFailure, ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined_shards)

    @property
    def hb_detections(self) -> list[SiteDetection]:
        return [detection for detection in self.detections if detection.hb_detected]

    @property
    def hb_domains(self) -> list[str]:
        return [detection.domain for detection in self.hb_detections]

    @property
    def adoption_rate(self) -> float:
        if not self.detections:
            return 0.0
        return len(self.hb_detections) / len(self.detections)

    def merge(self, other: "CrawlResult") -> "CrawlResult":
        """Combine two results, preserving ``self``-then-``other`` order.

        Merging is associative and order-preserving, which is what lets the
        engine reassemble per-shard results into the canonical sequence:
        ``merged([a, b, c])`` equals ``a.merge(b).merge(c)``.  Neither input
        is mutated.
        """
        return CrawlResult(
            detections=self.detections + other.detections,
            timed_out_domains=self.timed_out_domains + other.timed_out_domains,
            pages_visited=self.pages_visited + other.pages_visited,
            sessions_started=self.sessions_started + other.sessions_started,
            retries=self.retries + other.retries,
            pool_rebuilds=self.pool_rebuilds + other.pool_rebuilds,
            sink_retries=self.sink_retries + other.sink_retries,
            quarantined_shards=self.quarantined_shards + other.quarantined_shards,
        )

    @classmethod
    def merged(cls, results: Iterable["CrawlResult"]) -> "CrawlResult":
        """Merge many results left to right into a fresh :class:`CrawlResult`."""
        return reduce(cls.merge, results, cls())


ProgressCallback = Callable[[int, int, SiteDetection], None]


class Crawler:
    """Visits publishers with HBDetector loaded and collects detections.

    A thin facade over :class:`repro.crawler.engine.CrawlEngine`; kept for
    backward compatibility and as the one-object entry point.  The engine's
    backend is taken from ``config.backend`` / ``config.workers`` (serial by
    default, matching the paper's sequential crawl).
    """

    def __init__(
        self,
        environment: AuctionEnvironment,
        detector: HBDetector,
        config: CrawlConfig | None = None,
        *,
        backend: "ExecutionBackend | None" = None,
        fault_plan: object | None = None,
    ) -> None:
        from repro.crawler.engine import CrawlEngine

        self.environment = environment
        self.detector = detector
        self.config = config or CrawlConfig()
        self.engine: "CrawlEngine" = CrawlEngine(
            environment, detector, self.config, backend=backend, fault_plan=fault_plan
        )

    def close(self) -> None:
        """Release the engine's pooled workers (idempotent)."""
        self.engine.close()

    def __enter__(self) -> "Crawler":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        try:
            self.close()
        except Exception:
            # Never mask a crawl error with a pool-teardown failure.
            if exc_type is None:
                raise

    def crawl(
        self,
        publishers: Sequence[Publisher] | PublisherPopulation,
        *,
        crawl_day: int = 0,
        progress: ProgressCallback | None = None,
        sink: "DetectionSinkLike | None" = None,
        checkpoint: "CrawlCheckpointer | None" = None,
    ) -> CrawlResult:
        """Visit every publisher once and run detection on each page load."""
        return self.engine.crawl(
            publishers,
            crawl_day=crawl_day,
            progress=progress,
            sink=sink,
            checkpoint=checkpoint,
        )

    def crawl_domains(
        self,
        population: PublisherPopulation,
        domains: Iterable[str],
        *,
        crawl_day: int = 0,
        progress: ProgressCallback | None = None,
        sink: "DetectionSinkLike | None" = None,
        checkpoint: "CrawlCheckpointer | None" = None,
    ) -> CrawlResult:
        """Crawl a subset of a population selected by domain name."""
        return self.engine.crawl_domains(
            population,
            domains,
            crawl_day=crawl_day,
            progress=progress,
            sink=sink,
            checkpoint=checkpoint,
        )
