"""The main crawl driver.

Given a publisher population (the simulated Web), the crawler visits each
site with a clean-slate session, runs HBDetector on every page load, handles
page-load timeouts by killing and restarting the session, and returns the
per-site detections together with crawl bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.crawler.session import CrawlSession
from repro.detector.detector import HBDetector
from repro.detector.records import SiteDetection
from repro.ecosystem.publishers import Publisher, PublisherPopulation
from repro.errors import ConfigurationError
from repro.hb.environment import AuctionEnvironment

__all__ = ["CrawlConfig", "CrawlResult", "Crawler"]


@dataclass(frozen=True)
class CrawlConfig:
    """Operational parameters of a crawl (mirrors §3.2 of the paper)."""

    seed: int = 2019
    page_load_timeout_ms: float = 60_000.0
    extra_dwell_ms: float = 5_000.0
    #: Restart the browser session after this many pages even without a
    #: timeout, bounding state accumulation (defensive; the paper restarts
    #: per page, which corresponds to ``1``).
    restart_every_pages: int = 1

    def __post_init__(self) -> None:
        if self.page_load_timeout_ms <= 0:
            raise ConfigurationError("page load timeout must be positive")
        if self.extra_dwell_ms < 0:
            raise ConfigurationError("extra dwell cannot be negative")
        if self.restart_every_pages < 1:
            raise ConfigurationError("restart_every_pages must be >= 1")


@dataclass
class CrawlResult:
    """Outcome of crawling a list of sites once."""

    detections: list[SiteDetection] = field(default_factory=list)
    timed_out_domains: list[str] = field(default_factory=list)
    pages_visited: int = 0
    sessions_started: int = 0

    @property
    def hb_detections(self) -> list[SiteDetection]:
        return [detection for detection in self.detections if detection.hb_detected]

    @property
    def hb_domains(self) -> list[str]:
        return [detection.domain for detection in self.hb_detections]

    @property
    def adoption_rate(self) -> float:
        if not self.detections:
            return 0.0
        return len(self.hb_detections) / len(self.detections)


ProgressCallback = Callable[[int, int, SiteDetection], None]


class Crawler:
    """Visits publishers with HBDetector loaded and collects detections."""

    def __init__(
        self,
        environment: AuctionEnvironment,
        detector: HBDetector,
        config: CrawlConfig | None = None,
    ) -> None:
        self.environment = environment
        self.detector = detector
        self.config = config or CrawlConfig()

    def _new_session(self) -> CrawlSession:
        return CrawlSession(
            environment=self.environment,
            seed=self.config.seed,
            page_load_timeout_ms=self.config.page_load_timeout_ms,
            extra_dwell_ms=self.config.extra_dwell_ms,
        )

    def crawl(
        self,
        publishers: Sequence[Publisher] | PublisherPopulation,
        *,
        crawl_day: int = 0,
        progress: ProgressCallback | None = None,
    ) -> CrawlResult:
        """Visit every publisher once and run detection on each page load."""
        sites = list(publishers)
        result = CrawlResult()
        session = self._new_session()
        result.sessions_started += 1

        for index, publisher in enumerate(sites):
            page = session.load(publisher, visit_index=crawl_day)
            result.pages_visited += 1
            if page.timed_out:
                # The paper kills the instance after 60 s and moves on; the
                # partially loaded page still yields whatever was observed.
                result.timed_out_domains.append(publisher.domain)
                session.kill()
                session = self._new_session()
                result.sessions_started += 1
            detection = self.detector.inspect_page(page, crawl_day=crawl_day)
            result.detections.append(detection)
            if progress is not None:
                progress(index + 1, len(sites), detection)
            if not page.timed_out and session.pages_loaded >= self.config.restart_every_pages:
                session.kill()
                session = self._new_session()
                result.sessions_started += 1
        session.kill()
        return result

    def crawl_domains(
        self,
        population: PublisherPopulation,
        domains: Iterable[str],
        *,
        crawl_day: int = 0,
    ) -> CrawlResult:
        """Crawl a subset of a population selected by domain name."""
        publishers = [population.by_domain(domain) for domain in domains]
        return self.crawl(publishers, crawl_day=crawl_day)
