"""On-disk persistence of crawl datasets.

Detections are stored as JSON Lines (one :class:`SiteDetection` per line),
which keeps the files append-friendly during long crawls, diff-able in code
review, and loadable without any third-party dependency.

The write hot path is :class:`DetectionSink`: it serialises each detection
through the fast path :func:`detection_to_json_line` and batches lines in
memory, touching the file (and flushing the OS buffer) only every
``flush_every`` records, at shard boundaries (the crawl engine calls
:meth:`DetectionSink.flush`) and on close.  ``flush_every=1`` reproduces the
old write-and-fsync-per-record behaviour.  The produced bytes are identical
for every flush interval.
"""

from __future__ import annotations

import json
from pathlib import Path
from types import TracebackType
from typing import IO, Iterable, Iterator

from repro.detector.records import ObservedAuction, ObservedBid, SiteDetection
from repro.errors import StorageError
from repro.models import HBFacet

__all__ = [
    "STORE_FORMATS",
    "CrawlStorage",
    "DetectionSink",
    "detection_to_dict",
    "detection_from_dict",
    "detection_to_json_line",
]

#: Detection store backends: "jsonl" is the human-greppable reference format,
#: "columnar" (repro.crawler.colstore) the typed binary fast path.
STORE_FORMATS = ("jsonl", "columnar")


def detection_to_dict(detection: SiteDetection) -> dict:
    """Serialise one detection to plain JSON-compatible data.

    This runs once per page visit on the streaming path, so it is written as
    a single dict display with pre-bound locals — no helper calls, no
    conditional re-evaluation — rather than the more obvious nested
    comprehension over attribute chains.
    """
    facet = detection.facet
    auctions_out = []
    for auction in detection.auctions:
        bids_out = []
        for bid in auction.bids:
            bids_out.append(
                {
                    "partner": bid.partner,
                    "bidder_code": bid.bidder_code,
                    "slot_code": bid.slot_code,
                    "cpm": bid.cpm,
                    "size": bid.size,
                    "latency_ms": bid.latency_ms,
                    "late": bid.late,
                    "won": bid.won,
                    "source": bid.source,
                }
            )
        auctions_out.append(
            {
                "slot_code": auction.slot_code,
                "size": auction.size,
                "start_ms": auction.start_ms,
                "end_ms": auction.end_ms,
                "facet": auction.facet.value,
                "bids": bids_out,
            }
        )
    return {
        "domain": detection.domain,
        "rank": detection.rank,
        "hb_detected": detection.hb_detected,
        "facet": facet.value if facet is not None else None,
        "library": detection.library,
        "partners": list(detection.partners),
        "partner_latencies_ms": dict(detection.partner_latencies_ms),
        "total_latency_ms": detection.total_latency_ms,
        "detection_channels": list(detection.detection_channels),
        "crawl_day": detection.crawl_day,
        "page_load_ms": detection.page_load_ms,
        "auctions": auctions_out,
    }


def detection_to_json_line(detection: SiteDetection) -> str:
    """One detection as its canonical JSON-Lines line (newline included)."""
    return json.dumps(detection_to_dict(detection)) + "\n"


def detection_from_dict(data: dict) -> SiteDetection:
    """Rebuild a detection from its JSON form."""
    try:
        auctions = tuple(
            ObservedAuction(
                slot_code=auction["slot_code"],
                size=auction.get("size"),
                start_ms=float(auction["start_ms"]),
                end_ms=float(auction["end_ms"]),
                facet=HBFacet(auction["facet"]),
                bids=tuple(
                    ObservedBid(
                        partner=bid["partner"],
                        bidder_code=bid["bidder_code"],
                        slot_code=bid["slot_code"],
                        cpm=bid.get("cpm"),
                        size=bid.get("size"),
                        latency_ms=bid.get("latency_ms"),
                        late=bool(bid.get("late", False)),
                        won=bool(bid.get("won", False)),
                        source=bid.get("source", "client"),
                    )
                    for bid in auction.get("bids", [])
                ),
            )
            for auction in data.get("auctions", [])
        )
        return SiteDetection(
            domain=data["domain"],
            rank=int(data["rank"]),
            hb_detected=bool(data["hb_detected"]),
            facet=HBFacet(data["facet"]) if data.get("facet") else None,
            library=data.get("library"),
            partners=tuple(data.get("partners", [])),
            auctions=auctions,
            partner_latencies_ms=dict(data.get("partner_latencies_ms", {})),
            total_latency_ms=data.get("total_latency_ms"),
            detection_channels=tuple(data.get("detection_channels", [])),
            crawl_day=int(data.get("crawl_day", 0)),
            page_load_ms=data.get("page_load_ms"),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise StorageError(f"malformed detection record: {exc}") from exc


class DetectionSink:
    """Buffered streaming writer of detections to a JSON-Lines file.

    Used by the crawl engine to persist detections incrementally as shards
    complete instead of buffering a whole crawl in memory; writing detections
    one at a time produces byte-identical files to a single
    :meth:`CrawlStorage.save` call over the same sequence.  Lines accumulate
    in an in-memory buffer and hit the file every ``flush_every`` records,
    on :meth:`flush` (the engine flushes at shard boundaries) and on close.
    Use as a context manager (or call :meth:`close`), e.g.::

        with CrawlStorage("crawl.jsonl").open_sink() as sink:
            engine.crawl(population, sink=sink)
    """

    #: Default number of records buffered between file writes.
    DEFAULT_FLUSH_EVERY = 64

    def __init__(
        self,
        path: str | Path,
        *,
        append: bool = False,
        flush_every: int = DEFAULT_FLUSH_EVERY,
    ) -> None:
        if flush_every < 1:
            raise StorageError("flush_every must be >= 1")
        self.path = Path(path)
        self.append = append
        self.flush_every = flush_every
        self.count = 0
        #: Lifetime number of buffer-to-file flushes (for benchmarks).
        self.flushes = 0
        self._buffer: list[str] = []
        self._handle: IO[str] | None = None
        self._closed = False
        self._offset: int | None = None

    @property
    def offset(self) -> int:
        """Bytes durably in the file from this sink's point of view.

        Counts only flushed data (buffered lines are excluded), starting from
        the pre-existing file size in append mode and from zero otherwise.
        This is the byte position a crawl checkpoint records: everything
        before it is complete, canonical JSON-Lines records.
        """
        if self._offset is None:
            if self.append:
                try:
                    self._offset = self.path.stat().st_size
                except OSError:
                    self._offset = 0
            else:
                self._offset = 0
        return self._offset

    def _ensure_open(self) -> IO[str]:
        if self._closed:
            # Reopening a "w"-mode sink would silently truncate everything
            # written before close(); refuse instead.
            raise StorageError(f"detection sink for {self.path} is closed")
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                self._handle = self.path.open("a" if self.append else "w", encoding="utf-8")
            except OSError as exc:
                raise StorageError(f"could not open {self.path}: {exc}") from exc
        return self._handle

    def write(self, detection: SiteDetection) -> None:
        """Buffer one detection (hits the file every ``flush_every`` records)."""
        if self._closed:
            raise StorageError(f"detection sink for {self.path} is closed")
        self._buffer.append(detection_to_json_line(detection))
        self.count += 1
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def write_many(self, detections: Iterable[SiteDetection]) -> int:
        """Buffer many detections; returns how many were written."""
        before = self.count
        for detection in detections:
            self.write(detection)
        return self.count - before

    def flush(self) -> None:
        """Write any buffered lines to the file and flush the OS buffer."""
        if not self._buffer:
            return
        handle = self._ensure_open()
        payload = "".join(self._buffer)
        # Snapshot before the write: the lazy property stats the file, and a
        # post-write stat would count this payload twice in append mode.
        base = self.offset
        try:
            handle.write(payload)
            handle.flush()
        except OSError as exc:
            raise StorageError(f"could not write {self.path}: {exc}") from exc
        self._buffer.clear()
        self.flushes += 1
        self._offset = base + len(payload.encode("utf-8"))

    def close(self) -> None:
        """Flush the buffered tail and close the file.

        Idempotent: every call after the first is a no-op, including when the
        first call's flush failed mid-write — the sink still ends closed with
        the OS handle released, so cleanup paths (``finally`` blocks, context
        managers) can call it unconditionally after a mid-shard error.
        """
        if self._closed:
            return
        try:
            self.flush()
        finally:
            self._closed = True
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "DetectionSink":
        self._ensure_open()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        try:
            self.close()
        except StorageError:
            # If the body already failed, a secondary flush failure while
            # closing must not mask the original exception (the root cause);
            # a clean body still surfaces the close failure.
            if exc_type is None:
                raise


class CrawlStorage:
    """Reads and writes JSON-Lines crawl datasets."""

    format = "jsonl"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def open_sink(
        self,
        *,
        append: bool = False,
        flush_every: int = DetectionSink.DEFAULT_FLUSH_EVERY,
    ) -> DetectionSink:
        """Open a streaming sink over this dataset file.

        ``append=False`` starts a fresh file (like :meth:`save`);
        ``append=True`` extends an existing one (like :meth:`append`, e.g.
        one sink per crawl day over a shared longitudinal file).
        ``flush_every`` sets the buffering interval (``1`` = unbuffered).
        """
        return DetectionSink(self.path, append=append, flush_every=flush_every)

    def save(self, detections: Iterable[SiteDetection]) -> int:
        """Write detections to the file, replacing previous content."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        count = 0
        try:
            with self.path.open("w", encoding="utf-8") as handle:
                for detection in detections:
                    handle.write(detection_to_json_line(detection))
                    count += 1
        except OSError as exc:
            raise StorageError(f"could not write {self.path}: {exc}") from exc
        return count

    def append(self, detections: Iterable[SiteDetection]) -> int:
        """Append detections (e.g. one crawl day) to the file."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        count = 0
        try:
            with self.path.open("a", encoding="utf-8") as handle:
                for detection in detections:
                    handle.write(detection_to_json_line(detection))
                    count += 1
        except OSError as exc:
            raise StorageError(f"could not append to {self.path}: {exc}") from exc
        return count

    def load(self) -> list[SiteDetection]:
        """Load every detection stored in the file."""
        return list(self.iter_load())

    def iter_load(self) -> Iterator[SiteDetection]:
        """Stream detections from the file one at a time."""
        if not self.path.exists():
            raise StorageError(f"crawl dataset not found: {self.path}")
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        data = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise StorageError(
                            f"invalid JSON on line {line_number} of {self.path}: {exc}"
                        ) from exc
                    yield detection_from_dict(data)
        except OSError as exc:
            raise StorageError(f"could not read {self.path}: {exc}") from exc

    def size(self) -> int:
        """Current byte size of the dataset file (``0`` when it is missing).

        A cheap staleness probe for pollers: a tailing loop (the service's
        SSE stream, ``analyze --watch``) can compare ``size()`` against its
        read offset and skip opening + reading the file entirely when nothing
        new has been flushed.  ``size() > offset`` does not promise a
        complete record — a flush may land mid-line — only that
        :meth:`read_new` is worth calling; ``size() < offset`` means the file
        was truncated or replaced and the next :meth:`read_new` will raise.
        """
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def read_new(self, offset: int = 0) -> tuple[list[SiteDetection], int]:
        """Read complete records appended at or after byte ``offset``.

        The tailing primitive behind ``hbrepro analyze --watch``: returns the
        detections whose lines were fully written (newline-terminated) since
        ``offset``, together with the new offset to resume from.  A trailing
        partial line — a sink may flush mid-crawl at any byte — is left for
        the next call.  A missing file simply yields nothing, so a watcher
        can start before the crawl's first flush.

        Safe for one reader concurrent with one appending writer (a
        :class:`DetectionSink` on another thread or process): a flush that
        lands *during* the read is seen either not at all or as a (possibly
        partial) suffix of the chunk, and everything after the last newline
        is deferred to the next call — so a record is never returned torn or
        twice, and the returned offset always falls on a record boundary.
        Only truncating/replacing the file under the reader raises.
        """
        if offset < 0:
            raise StorageError("read offset cannot be negative")
        if not self.path.exists():
            return [], offset
        try:
            if self.path.stat().st_size < offset:
                # The file was replaced/truncated under the reader (e.g. the
                # crawl was restarted with a fresh "w"-mode sink).  Resuming
                # from the stale offset would stall forever or land
                # mid-record; make the caller decide how to restart.
                raise StorageError(
                    f"{self.path} shrank below read offset {offset}: truncated"
                )
            with self.path.open("rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except OSError as exc:
            raise StorageError(f"could not read {self.path}: {exc}") from exc
        end = chunk.rfind(b"\n")
        if end < 0:
            return [], offset
        complete = chunk[: end + 1]
        return self._parse_lines(complete, "tailing"), offset + len(complete)

    def _parse_lines(self, blob: bytes, action: str) -> list[SiteDetection]:
        """Parse newline-terminated JSON-Lines bytes, loudly on any damage."""
        detections = []
        for raw_line in blob.split(b"\n"):
            line = raw_line.strip()
            if not line:
                continue
            try:
                data = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise StorageError(f"invalid JSON while {action} {self.path}: {exc}") from exc
            detections.append(detection_from_dict(data))
        return detections

    def recover_to(self, offset: int) -> list[SiteDetection]:
        """Truncate the file to ``offset`` bytes and return the kept records.

        The crash-recovery primitive behind resumable crawls: a checkpoint
        records the sink's byte offset at a shard boundary, so everything
        before ``offset`` is complete canonical records and anything after it
        is a half-flushed tail from the interrupted run (possibly ending in a
        partial line), which is dropped.  The kept prefix is parsed *before*
        the file is touched and every anomaly fails loudly instead of
        double-counting: a missing file, a file shorter than ``offset`` (it
        was truncated or replaced since the checkpoint was written), an
        ``offset`` that does not fall on a record boundary, or malformed
        records in the prefix all raise :class:`StorageError`.
        """
        if offset < 0:
            raise StorageError("recovery offset cannot be negative")
        if offset == 0:
            if self.path.exists():
                self._truncate(0)
            return []
        if not self.path.exists():
            raise StorageError(
                f"cannot recover {self.path}: the file is missing but the "
                f"checkpoint records {offset} bytes"
            )
        try:
            size = self.path.stat().st_size
            if size < offset:
                raise StorageError(
                    f"cannot recover {self.path}: the file holds {size} bytes but "
                    f"the checkpoint records {offset} — it was truncated or replaced"
                )
            with self.path.open("rb") as handle:
                prefix = handle.read(offset)
        except OSError as exc:
            raise StorageError(f"could not read {self.path}: {exc}") from exc
        if not prefix.endswith(b"\n"):
            raise StorageError(
                f"cannot recover {self.path}: byte {offset} is not a record "
                f"boundary — the file was replaced since the checkpoint"
            )
        detections = self._parse_lines(prefix, "recovering")
        if size > offset:
            self._truncate(offset)
        return detections

    def _truncate(self, offset: int) -> None:
        try:
            with self.path.open("r+b") as handle:
                handle.truncate(offset)
        except OSError as exc:
            raise StorageError(f"could not truncate {self.path}: {exc}") from exc
