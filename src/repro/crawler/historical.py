"""Historical adoption crawling (Figure 4).

Archived pages cannot be reliably *rendered* — their scripts are stale, their
third parties long gone — so the paper measures historical HB adoption by
statically analysing Wayback-Machine snapshots of the yearly top-1k lists.
The :class:`HistoricalCrawler` drives the static analyser over a
:class:`~repro.ecosystem.wayback.SnapshotArchive` and reports per-year
adoption, together with accuracy bookkeeping the reproduction can compute
because it (unlike the paper) knows the archived ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.detector.static_analysis import StaticAnalyzer, StaticDetection
from repro.ecosystem.wayback import SnapshotArchive
from repro.errors import CrawlError

__all__ = ["YearlyAdoption", "HistoricalAdoption", "HistoricalCrawler"]


@dataclass(frozen=True)
class YearlyAdoption:
    """Static-analysis adoption result for one year."""

    year: int
    sites_analyzed: int
    sites_with_hb: int
    detections: tuple[StaticDetection, ...] = ()
    #: Accuracy against archived ground truth (only available in simulation).
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def adoption_rate(self) -> float:
        if self.sites_analyzed == 0:
            return 0.0
        return self.sites_with_hb / self.sites_analyzed

    @property
    def precision(self) -> float:
        detected = self.true_positives + self.false_positives
        return self.true_positives / detected if detected else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0


@dataclass
class HistoricalAdoption:
    """Adoption results for every analysed year."""

    by_year: dict[int, YearlyAdoption] = field(default_factory=dict)

    @property
    def years(self) -> tuple[int, ...]:
        return tuple(sorted(self.by_year))

    def adoption_series(self) -> dict[int, float]:
        """Year → detected adoption rate (the Figure 4 series)."""
        return {year: self.by_year[year].adoption_rate for year in self.years}


class HistoricalCrawler:
    """Runs static analysis over archived snapshots, year by year."""

    def __init__(self, archive: SnapshotArchive, analyzer: StaticAnalyzer | None = None) -> None:
        self.archive = archive
        self.analyzer = analyzer or StaticAnalyzer()

    def crawl_year(self, year: int, *, keep_detections: bool = False) -> YearlyAdoption:
        """Statically analyse every archived snapshot of one year."""
        if year not in self.archive.top_lists:
            raise CrawlError(f"no snapshots archived for year {year}")
        snapshots = self.archive.snapshots_for(year)
        detections: list[StaticDetection] = []
        hits = 0
        tp = fp = fn = 0
        for snapshot in snapshots:
            detection = self.analyzer.analyze(snapshot.domain, snapshot.html)
            if keep_detections:
                detections.append(detection)
            if detection.hb_detected:
                hits += 1
                if snapshot.uses_hb:
                    tp += 1
                else:
                    fp += 1
            elif snapshot.uses_hb:
                fn += 1
        return YearlyAdoption(
            year=year,
            sites_analyzed=len(snapshots),
            sites_with_hb=hits,
            detections=tuple(detections),
            true_positives=tp,
            false_positives=fp,
            false_negatives=fn,
        )

    def crawl(self, years: Sequence[int] | None = None, *, keep_detections: bool = False) -> HistoricalAdoption:
        """Analyse all (or the given) archived years."""
        chosen = tuple(years) if years is not None else self.archive.years
        result = HistoricalAdoption()
        for year in chosen:
            result.by_year[year] = self.crawl_year(year, keep_detections=keep_detections)
        return result
