"""Crawling infrastructure.

The paper drives Chrome (with HBDetector loaded) through Selenium: a fresh,
stateless browser instance per page, a 60-second page-load timeout, a
five-second dwell after the load event, a one-shot crawl of the top-35k list
followed by a 34-day daily re-crawl of the HB-enabled sites, and a separate
static crawl of Wayback snapshots for the historical adoption figure.  This
package reproduces that pipeline on top of the simulated Web.

The crawl itself runs through :class:`CrawlEngine`: the site list is split
into deterministic shards (:class:`CrawlPlan`) fanned out to an execution
backend (:class:`SerialBackend`, :class:`ThreadPoolBackend` or
:class:`ProcessPoolBackend`), and per-shard results are merged back in
canonical site order — detections are byte-identical regardless of worker
count.  :class:`Crawler` remains the backward-compatible facade.
"""

from repro.crawler.session import CrawlSession
from repro.crawler.crawler import Crawler, CrawlConfig, CrawlResult
from repro.crawler.engine import (
    BACKEND_NAMES,
    CrawlEngine,
    CrawlPlan,
    CrawlShard,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    backend_from_name,
)
from repro.crawler.scheduler import LongitudinalScheduler, LongitudinalCrawl
from repro.crawler.historical import HistoricalCrawler, HistoricalAdoption
from repro.crawler.storage import CrawlStorage, DetectionSink
from repro.crawler.checkpoint import (
    CrawlCheckpoint,
    CrawlCheckpointer,
    plan_fingerprint,
    population_fingerprint,
)

__all__ = [
    "CrawlSession",
    "Crawler",
    "CrawlConfig",
    "CrawlResult",
    "CrawlEngine",
    "CrawlPlan",
    "CrawlShard",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "backend_from_name",
    "BACKEND_NAMES",
    "LongitudinalScheduler",
    "LongitudinalCrawl",
    "HistoricalCrawler",
    "HistoricalAdoption",
    "CrawlStorage",
    "DetectionSink",
    "CrawlCheckpoint",
    "CrawlCheckpointer",
    "plan_fingerprint",
    "population_fingerprint",
]
