"""Crawling infrastructure.

The paper drives Chrome (with HBDetector loaded) through Selenium: a fresh,
stateless browser instance per page, a 60-second page-load timeout, a
five-second dwell after the load event, a one-shot crawl of the top-35k list
followed by a 34-day daily re-crawl of the HB-enabled sites, and a separate
static crawl of Wayback snapshots for the historical adoption figure.  This
package reproduces that pipeline on top of the simulated Web.
"""

from repro.crawler.session import CrawlSession
from repro.crawler.crawler import Crawler, CrawlConfig, CrawlResult
from repro.crawler.scheduler import LongitudinalScheduler, LongitudinalCrawl
from repro.crawler.historical import HistoricalCrawler, HistoricalAdoption
from repro.crawler.storage import CrawlStorage

__all__ = [
    "CrawlSession",
    "Crawler",
    "CrawlConfig",
    "CrawlResult",
    "LongitudinalScheduler",
    "LongitudinalCrawl",
    "HistoricalCrawler",
    "HistoricalAdoption",
    "CrawlStorage",
]
