"""Parallel crawl engine with pluggable execution backends.

The paper's workload is embarrassingly parallel across sites: one discovery
pass over the 35k-site top list, then daily re-crawls of the ~5k HB-enabled
sites.  This module splits a publisher list into deterministic shards
(:class:`CrawlPlan`), fans the shards out to workers through an
:class:`ExecutionBackend` (serial, thread pool, or process pool), and merges
the per-shard :class:`~repro.crawler.crawler.CrawlResult` objects back in
canonical site order.

Worker-scoped environment reuse and shared-memory handoff
---------------------------------------------------------
Workers do **not** receive the environment and detector per shard.  Each
backend builds a :class:`WorkerContext` once per worker — at pool start via
the executor ``initializer`` hook — and shard tasks then ship only tiny
descriptors.  On the process backend the environment/detector/config payload
is serialised exactly once, into a ``multiprocessing.shared_memory`` block
(:class:`SharedPayload`) every worker attaches to; each crawl's site list is
published the same way, so warm re-crawls ship **zero** publisher bytes per
task — a shard task is a handful of integers naming its slice of the shared
list.  Blocks are refcounted and unlinked by ``shutdown()`` /
:meth:`CrawlEngine.close`.  On the thread backend each worker thread owns
one cheap :meth:`~repro.detector.detector.HBDetector.clone` (instead of a
``copy.deepcopy`` per shard) and shares the engine's precompiled
:class:`~repro.ecosystem.profiles.SiteProfileTable`.  Pools persist across
:meth:`CrawlEngine.crawl` calls, so a 34-day longitudinal campaign pays the
worker setup cost once, not once per day.  Call :meth:`CrawlEngine.close`
(or use the engine as a context manager) to release pool workers.

Determinism guarantee
---------------------
Every page load derives its RNG stream from ``(seed, domain, visit_index)``
(see :meth:`repro.browser.engine.BrowserEngine.load`), never from crawl
order, worker identity or shared session state.  Shards are contiguous
chunks of the input list and each shard additionally carries a seed derived
from ``(seed, "shard", index)`` for shard-local bookkeeping, so the plan
itself is a pure function of ``(sites, workers, seed)``.  Merging shard
results in shard-index order therefore reproduces the serial detection
sequence exactly: a crawl with ``workers=1`` and ``workers=8`` produces
byte-identical serialised detections, and reusing workers across shards or
crawls cannot change the bytes because the detector is reset at every shard
boundary and carries no cross-page state.

Streaming
---------
:meth:`CrawlEngine.crawl` accepts a ``sink`` (any object with a
``write(detection)`` method, e.g. :class:`repro.crawler.storage.DetectionSink`).
Detections are streamed to the sink in canonical order, instead of buffering
the whole crawl before persisting anything: the serial backend streams after
every page, pool backends stream each shard as soon as every earlier shard
has completed.  If the sink exposes a ``flush()`` method (buffered sinks do),
the engine calls it at every shard boundary, so a buffered sink never holds
more than one shard's tail of detections in memory.
"""

from __future__ import annotations

import json
import pickle
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Protocol, Sequence

from repro.browser.engine import BrowserEngine
from repro.crawler.crawler import (
    BACKEND_NAMES,
    CrawlConfig,
    CrawlResult,
    ProgressCallback,
    ShardFailure,
)
from repro.crawler.session import CrawlSession
from repro.detector.detector import HBDetector
from repro.detector.records import SiteDetection
from repro.ecosystem.publishers import Publisher, PublisherPopulation
from repro.errors import (
    CampaignCancelled,
    CheckpointError,
    ConfigurationError,
    ShardTimeout,
    StorageError,
)
from repro.hb.environment import AuctionEnvironment
from repro.utils.rng import stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.crawler.checkpoint import CrawlCheckpointer
    from repro.ecosystem.profiles import SiteProfileTable

__all__ = [
    "CrawlShard",
    "CrawlPlan",
    "WorkerContext",
    "SharedPayload",
    "SupervisionPolicy",
    "ShardFailure",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "CrawlEngine",
    "DetectionSinkLike",
    "backend_from_name",
    "BACKEND_NAMES",
]


# ---------------------------------------------------------------------------
# Sharding


@dataclass(frozen=True)
class CrawlShard:
    """One contiguous slice of the canonical site list, owned by one worker."""

    index: int
    #: Position of the shard's first site in the canonical (input) order.
    start: int
    publishers: tuple[Publisher, ...]
    #: Seed derived from ``(plan seed, "shard", index)``; reserved for
    #: shard-local decisions.  Page-level RNG is keyed by
    #: ``(seed, domain, visit_index)`` and deliberately ignores this, which is
    #: what keeps results independent of the worker count.
    shard_seed: int

    def __len__(self) -> int:
        return len(self.publishers)


@dataclass(frozen=True)
class CrawlPlan:
    """A deterministic partition of a publisher list into crawl shards."""

    seed: int
    n_sites: int
    shards: tuple[CrawlShard, ...]

    @classmethod
    def build(
        cls,
        publishers: Sequence[Publisher] | PublisherPopulation,
        *,
        workers: int = 1,
        seed: int = 2019,
        oversubscribe: int = 1,
    ) -> "CrawlPlan":
        """Split ``publishers`` into balanced shards.

        The split is contiguous (shard *i* holds an unbroken run of the input
        order) and a pure function of ``(publishers, workers, seed,
        oversubscribe)``: the first ``len(publishers) % n`` shards receive
        one extra site.  A parallel plan (``workers > 1``) produces up to
        ``workers * oversubscribe`` shards, so pool workers keep pulling work
        while an expensive high-rank shard is still running; a sequential
        plan is always a single shard.  Merging in shard order reproduces the
        canonical site order for any shard count, so detections are
        byte-identical regardless of ``oversubscribe``.
        """
        if workers < 1:
            raise ConfigurationError("a crawl plan needs at least one worker")
        if oversubscribe < 1:
            raise ConfigurationError("a crawl plan needs oversubscribe >= 1")
        sites = list(publishers)
        slots = workers * oversubscribe if workers > 1 else 1
        n_shards = max(1, min(slots, len(sites)))
        base, extra = divmod(len(sites), n_shards)
        shards = []
        start = 0
        for index in range(n_shards):
            size = base + (1 if index < extra else 0)
            shards.append(
                CrawlShard(
                    index=index,
                    start=start,
                    publishers=tuple(sites[start : start + size]),
                    shard_seed=stable_hash(seed, "shard", index),
                )
            )
            start += size
        return cls(seed=seed, n_sites=len(sites), shards=tuple(shards))

    @property
    def site_order(self) -> tuple[str, ...]:
        """Domains in canonical order (concatenation of the shards)."""
        return tuple(p.domain for shard in self.shards for p in shard.publishers)


# ---------------------------------------------------------------------------
# The per-worker context and the per-shard worker


@dataclass
class WorkerContext:
    """Crawl state one worker owns for its whole lifetime.

    Built once per worker (not once per shard): the serial backend wraps the
    caller's own objects, the thread backend clones the detector per worker
    thread, and the process backend ships the context to each worker process
    exactly once through a shared-memory block.

    ``profiles`` is the worker's precompiled :class:`SiteProfileTable`
    (shared between worker threads, per-process for process workers);
    ``browser`` is the worker's long-lived :class:`BrowserEngine`, which owns
    the per-worker scratch context the fast path reuses across page loads.
    Both are ``None`` when ``config.fast_path`` is off.
    """

    environment: AuctionEnvironment
    detector: HBDetector
    config: CrawlConfig
    profiles: "SiteProfileTable | None" = None
    browser: BrowserEngine | None = field(default=None, repr=False)

    @classmethod
    def build(
        cls,
        environment: AuctionEnvironment,
        detector: HBDetector,
        config: CrawlConfig,
        *,
        profiles: "SiteProfileTable | None" = None,
    ) -> "WorkerContext":
        """Assemble a context, compiling the profile table when fast-pathed."""
        if config.fast_path and profiles is None:
            from repro.ecosystem.profiles import SiteProfileTable

            profiles = SiteProfileTable(environment, seed=config.seed)
        context = cls(
            environment=environment, detector=detector, config=config, profiles=profiles
        )
        if config.fast_path:
            context.browser = BrowserEngine(
                environment,
                seed=config.seed,
                page_load_timeout_ms=config.page_load_timeout_ms,
                extra_dwell_ms=config.extra_dwell_ms,
                profiles=profiles,
            )
        return context


def _crawl_shard(
    context: WorkerContext,
    crawl_day: int,
    on_detection: Callable[[SiteDetection], None] | None,
    shard: CrawlShard,
) -> CrawlResult:
    """Crawl one shard using the worker's long-lived context.

    The detector is reset at shard start, so reusing one worker for many
    shards (or many crawl days) is observationally identical to giving every
    shard a fresh detector.  Sessions are created lazily: after a timeout or
    a scheduled restart the replacement is only spawned if another site
    remains, so the final page of a shard never bumps ``sessions_started``
    for a session that loads nothing.

    ``on_detection`` fires after every page; backends that run shards inline
    in the calling thread (``streams_inline``) use it for page-granular
    streaming, pool backends pass ``None`` and stream per completed shard.
    """
    environment, detector, config = context.environment, context.detector, context.config
    if (
        config.fast_path
        and getattr(config, "batch_sim", False)
        and context.browser is not None
        and context.profiles is not None
    ):
        from repro.ecosystem.columnar import simulate_shard_columnar

        return simulate_shard_columnar(context, crawl_day, on_detection, shard)
    detector.reset()
    result = CrawlResult()
    session: CrawlSession | None = None
    for publisher in shard.publishers:
        if session is None:
            session = CrawlSession(
                environment=environment,
                seed=config.seed,
                page_load_timeout_ms=config.page_load_timeout_ms,
                extra_dwell_ms=config.extra_dwell_ms,
                engine=context.browser,
            )
            result.sessions_started += 1
        page = session.load(publisher, visit_index=crawl_day)
        result.pages_visited += 1
        if page.timed_out:
            # The paper kills the instance after 60 s and moves on; the
            # partially loaded page still yields whatever was observed.
            result.timed_out_domains.append(publisher.domain)
            session.kill()
            session = None
        detection = detector.inspect_page(page, crawl_day=crawl_day)
        result.detections.append(detection)
        if on_detection is not None:
            on_detection(detection)
        if session is not None and session.pages_loaded >= config.restart_every_pages:
            session.kill()
            session = None
    if session is not None:
        session.kill()
    return result


# ---------------------------------------------------------------------------
# Shared-memory payload handoff (process backend)


class SharedPayload:
    """One pickled object published in a ``multiprocessing.shared_memory`` block.

    The parent process serialises the payload exactly once; worker processes
    attach to the block by name, deserialise, and detach immediately.  The
    creator keeps the only long-lived handle: :meth:`release` decrements the
    refcount taken by :meth:`retain` and closes + unlinks the block when it
    reaches zero (``CrawlEngine.close`` releases through the backend).
    """

    __slots__ = ("name", "size", "_shm", "_refs", "_finalizer", "__weakref__")

    def __init__(self, payload: object) -> None:
        import weakref
        from multiprocessing import shared_memory

        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, len(data)))
        self._shm.buf[: len(data)] = data
        self.name = self._shm.name
        self.size = len(data)
        self._refs = 1
        # Safety net: unlink at GC / interpreter exit even if the owner never
        # reaches release() (e.g. a crashed crawl that skipped close()).
        self._finalizer = weakref.finalize(self, _destroy_shared_block, self._shm)

    def retain(self) -> "SharedPayload":
        if self._shm is None:
            raise ConfigurationError("cannot retain a released shared payload")
        self._refs += 1
        return self

    def release(self) -> None:
        if self._shm is None:
            return
        self._refs -= 1
        if self._refs > 0:
            return
        shm, self._shm = self._shm, None
        self._finalizer.detach()
        _destroy_shared_block(shm)

    @property
    def live(self) -> bool:
        return self._shm is not None


def _destroy_shared_block(shm) -> None:
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


def _read_shared_payload(name: str, size: int) -> object:
    """Attach to a shared block, deserialise its payload, detach (worker side).

    Attaching normally *registers* the segment with the resource tracker
    (CPython < 3.13 offers no ``track=False``), and the tracker — shared with
    the parent — would then unlink a block the parent still owns when any
    worker exits.  The attach is wrapped with registration suppressed; the
    parent remains the sole owner.
    """
    from multiprocessing import resource_tracker, shared_memory

    register, resource_tracker.register = resource_tracker.register, lambda *a, **k: None
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = register
    try:
        return pickle.loads(bytes(shm.buf[:size]))
    finally:
        shm.close()


#: Per-process worker context, populated by the process pool initializer.
#: Lives at module scope so shard tasks reach it without any per-task payload.
_PROCESS_CONTEXT: WorkerContext | None = None

#: Per-process cache of site lists received through shared memory, keyed by
#: block name.  Bounded: a worker keeps the few most recent lists (a
#: longitudinal campaign re-crawls the same list every day).
_PROCESS_SITE_CACHE: dict[str, list[Publisher]] = {}
_PROCESS_SITE_CACHE_LIMIT = 4


def _init_process_worker(payload_name: str, payload_size: int) -> None:
    """Process pool initializer: read the worker context from shared memory.

    The environment/detector/config payload is serialised once by the parent
    (into the block every worker attaches to) instead of once per worker
    through the initializer arguments; only the block's name and size travel
    per worker.
    """
    global _PROCESS_CONTEXT
    environment, detector, config = _read_shared_payload(payload_name, payload_size)
    _PROCESS_CONTEXT = WorkerContext.build(environment, detector, config)
    _PROCESS_SITE_CACHE.clear()


def _process_context() -> WorkerContext:
    context = _PROCESS_CONTEXT
    if context is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("process worker used before its context was initialised")
    return context


def _run_shard_in_process(
    shard: CrawlShard, crawl_day: int, fault: Callable[[], None] | None = None
) -> CrawlResult:
    """Entry point for process-pool shard tasks (only the descriptor ships)."""
    if fault is not None:
        fault()
    return _crawl_shard(_process_context(), crawl_day, None, shard)


def _run_shard_from_shared_sites(
    sites_name: str,
    sites_size: int,
    index: int,
    start: int,
    length: int,
    shard_seed: int,
    crawl_day: int,
    fault: Callable[[], None] | None = None,
) -> CrawlResult:
    """Process-pool shard task whose publishers live in a shared site list.

    The task ships a handful of integers and the block name; the worker
    attaches to the published site list once, caches it, and slices its own
    contiguous shard out of it — no per-shard publisher pickling at all.
    """
    if fault is not None:
        fault()
    sites = _PROCESS_SITE_CACHE.get(sites_name)
    if sites is None:
        sites = list(_read_shared_payload(sites_name, sites_size))
        while len(_PROCESS_SITE_CACHE) >= _PROCESS_SITE_CACHE_LIMIT:
            _PROCESS_SITE_CACHE.pop(next(iter(_PROCESS_SITE_CACHE)))
        _PROCESS_SITE_CACHE[sites_name] = sites
    shard = CrawlShard(
        index=index,
        start=start,
        publishers=tuple(sites[start : start + length]),
        shard_seed=shard_seed,
    )
    return _crawl_shard(_process_context(), crawl_day, None, shard)


def _init_thread_worker(local: threading.local, prototype: WorkerContext) -> None:
    """Thread pool initializer: give the worker thread its own detector clone.

    The profile table is shared with the prototype (compilation is
    deterministic and insertion is lock-guarded), but each thread owns its
    browser engine — and with it the scratch context pages are simulated in.
    """
    local.context = WorkerContext.build(
        prototype.environment,
        prototype.detector.clone(),
        prototype.config,
        profiles=prototype.profiles,
    )


def _run_shard_in_thread(
    local: threading.local,
    prototype: WorkerContext,
    shard: CrawlShard,
    crawl_day: int,
    fault: Callable[[], None] | None = None,
) -> CrawlResult:
    """Entry point for thread-pool shard tasks, using the thread's context."""
    if fault is not None:
        fault()
    context = getattr(local, "context", None)
    if context is None:  # pragma: no cover - defensive: initializer always runs
        _init_thread_worker(local, prototype)
        context = local.context
    return _crawl_shard(context, crawl_day, None, shard)


# ---------------------------------------------------------------------------
# Supervision


@dataclass(frozen=True)
class SupervisionPolicy:
    """How a backend treats a failing or overdue shard attempt.

    Built from the crawl config (:meth:`from_config`) and installed on
    backends by the engine via ``set_supervision``.  The defaults describe
    the *unsupervised* legacy behaviour: no retries, no timeout, failures
    abort the crawl.
    """

    retries: int = 0
    timeout: float | None = None
    backoff: float = 0.0
    seed: int = 0
    quarantine: bool = False

    @classmethod
    def from_config(cls, config: CrawlConfig) -> "SupervisionPolicy":
        return cls(
            retries=config.shard_retries,
            timeout=config.shard_timeout,
            backoff=config.retry_backoff,
            seed=config.seed,
            quarantine=config.quarantine,
        )

    def delay(self, key: object, attempt: int) -> float:
        """Exponential backoff before retry ``attempt`` (1-based).

        The jitter factor in ``[0.5, 1.0)`` is derived from
        ``(seed, key, attempt)`` instead of wall-clock randomness, so retry
        schedules — like everything else in a crawl — are reproducible.
        """
        if self.backoff <= 0:
            return 0.0
        jitter = 0.5 + (stable_hash(self.seed, "retry", key, attempt) % 1024) / 2048.0
        return self.backoff * (2 ** (attempt - 1)) * jitter


def _retryable(exc: BaseException) -> bool:
    """Whether supervision may retry after ``exc``.

    Configuration and checkpoint errors reproduce identically on every
    attempt, and a cancelled campaign must stop *now* — everything else
    (injected faults, broken pools, transient I/O) is assumed transient.
    """
    return not isinstance(exc, (ConfigurationError, CheckpointError, CampaignCancelled))


class _ReplayEmitter:
    """Wraps an ``on_detection`` target so shard retries never double-emit.

    Inline backends stream page by page, so when a shard attempt fails
    mid-stream some of its detections have already reached the sink.  A
    retried attempt re-simulates the shard deterministically — the same
    detections in the same order — so the emitter swallows the first
    ``delivered`` of them and streaming resumes exactly where it stopped,
    keeping the sink bytes identical to a fault-free run.
    """

    __slots__ = ("_target", "delivered", "_seen")

    def __init__(self, target: Callable[[SiteDetection], None]) -> None:
        self._target = target
        self.delivered = 0
        self._seen = 0

    def reset(self) -> None:
        """Forget the previous shard (call at every shard start)."""
        self.delivered = 0
        self._seen = 0

    def begin_attempt(self) -> None:
        """Start (re)playing the current shard from its first detection."""
        self._seen = 0

    def __call__(self, detection: SiteDetection) -> None:
        self._seen += 1
        if self._seen <= self.delivered:
            return
        self._target(detection)
        self.delivered = self._seen


class _SupervisionMixin:
    """Shared retry/quarantine bookkeeping for the built-in backends."""

    def _init_supervision(self) -> None:
        self._policy: SupervisionPolicy | None = None
        self._on_event: Callable[..., None] | None = None
        self._fault_plan = None
        #: Lifetime counters; the engine snapshots deltas per crawl.
        self.retries = 0
        self.quarantined = 0
        self.pool_rebuilds = 0

    def set_supervision(
        self,
        policy: SupervisionPolicy | None,
        on_event: Callable[..., None] | None = None,
    ) -> None:
        """Install the retry/timeout/quarantine policy (engine-called)."""
        self._policy = policy
        self._on_event = on_event

    def set_fault_plan(self, plan) -> None:
        """Install a fault-injection plan (``None`` clears it)."""
        self._fault_plan = plan

    def _event(self, kind: str, **data) -> None:
        if self._on_event is not None:
            self._on_event(kind, **data)

    def _next_fault(self, shard: CrawlShard, attempt: int):
        if self._fault_plan is None:
            return None
        return self._fault_plan.next_action(shard.index, attempt)

    def _failure_verdict(
        self,
        policy: SupervisionPolicy | None,
        shard: CrawlShard,
        attempt: int,
        exc: BaseException,
    ):
        """Classify one failed attempt: ``("retry", delay)``,
        ``("quarantine", ShardFailure)``, or re-raise ``exc``."""
        if policy is not None and _retryable(exc):
            error = f"{type(exc).__name__}: {exc}"
            if attempt < policy.retries:
                self.retries += 1
                delay = policy.delay(shard.index, attempt + 1)
                self._event(
                    "retry",
                    shard=shard.index,
                    attempt=attempt + 1,
                    delay=round(delay, 3),
                    error=error,
                )
                return "retry", delay
            if policy.quarantine:
                self.quarantined += 1
                failure = ShardFailure(
                    shard_index=shard.index,
                    error=error,
                    attempts=attempt + 1,
                    domains=tuple(p.domain for p in shard.publishers),
                )
                self._event(
                    "quarantine", shard=shard.index, attempts=attempt + 1, error=error
                )
                return "quarantine", failure
        raise exc


# ---------------------------------------------------------------------------
# Execution backends


class ExecutionBackend(Protocol):
    """Strategy for running shard tasks; yields results in completion order."""

    name: str
    #: Whether shards run inline in the calling thread, in shard order — in
    #: which case the engine streams detections page by page through the
    #: worker's ``on_detection`` hook instead of per completed shard.
    streams_inline: bool

    def prepare(self, context: WorkerContext) -> None:
        """Install the crawl state workers will reuse across shards/crawls."""
        ...

    def execute(
        self,
        shards: Sequence[CrawlShard],
        crawl_day: int,
        on_detection: Callable[[SiteDetection], None] | None,
    ) -> Iterator[tuple[int, "CrawlResult | ShardFailure"]]:
        """Run every shard, yielding ``(shard_index, result)``.

        Supervised backends (see ``set_supervision``) may yield a
        :class:`ShardFailure` in place of a result for a shard that
        exhausted its retry budget and was quarantined.
        """
        ...

    def shutdown(self) -> None:
        """Release any pooled workers (idempotent)."""
        ...

    # Backends may additionally expose ``publish_sites(sites)``: a hint,
    # called once per crawl before ``execute``, that lets a backend ship the
    # canonical site list to its workers out of band (the process backend
    # publishes it in shared memory).  The engine treats it as optional.


class SerialBackend(_SupervisionMixin):
    """Run shards one after another in the calling thread (the default).

    The single worker is the caller itself, so the context wraps the engine's
    own environment/detector without any copy — exactly the paper's
    sequential crawl.

    Supervision notes: ``shard_timeout`` is not enforceable here (there is no
    second thread to preempt the caller), and an injected ``crash`` fault
    degrades to an exception — killing the only process would defeat the
    point.  Retries replay a shard through a :class:`_ReplayEmitter`, so the
    detections an earlier attempt already streamed are skipped, not repeated.
    """

    name = "serial"
    streams_inline = True

    def __init__(self) -> None:
        self._context: WorkerContext | None = None
        self._init_supervision()

    def prepare(self, context: WorkerContext) -> None:
        self._context = context

    def execute(
        self,
        shards: Sequence[CrawlShard],
        crawl_day: int,
        on_detection: Callable[[SiteDetection], None] | None,
    ) -> Iterator[tuple[int, "CrawlResult | ShardFailure"]]:
        if self._context is None:
            raise ConfigurationError("backend used before prepare()")
        if self._policy is None and self._fault_plan is None:
            for shard in shards:
                yield shard.index, _crawl_shard(
                    self._context, crawl_day, on_detection, shard
                )
            return
        emitter = _ReplayEmitter(on_detection) if on_detection is not None else None
        for shard in shards:
            if emitter is not None:
                emitter.reset()
            attempt = 0
            while True:
                if emitter is not None:
                    emitter.begin_attempt()
                try:
                    fault = self._next_fault(shard, attempt)
                    if fault is not None:
                        fault()
                    result = _crawl_shard(self._context, crawl_day, emitter, shard)
                except Exception as exc:
                    verdict, extra = self._failure_verdict(
                        self._policy, shard, attempt, exc
                    )
                    if verdict == "retry":
                        attempt += 1
                        if extra:
                            time.sleep(extra)
                        continue
                    yield shard.index, extra  # the ShardFailure
                    break
                else:
                    yield shard.index, result
                    break

    def shutdown(self) -> None:
        self._context = None


class _ExecutorBackend(_SupervisionMixin):
    """Shared machinery for ``concurrent.futures`` based backends.

    The executor is created lazily on first use and then *persists* across
    ``execute()`` calls, so per-worker setup (context build, environment
    pickling) happens once per worker for the backend's whole lifetime
    instead of once per crawl.  ``shutdown()`` releases the pool.

    With a :class:`SupervisionPolicy` installed, ``execute`` runs a
    supervised loop: failed attempts retry with deterministic backoff, a
    :class:`BrokenExecutor` (a worker died) rebuilds the pool in place and
    resubmits everything that was in flight, attempts that exceed
    ``policy.timeout`` are abandoned and retried, and a shard that exhausts
    its budget is yielded as a :class:`ShardFailure` instead of aborting
    the crawl.
    """

    name = "executor"
    streams_inline = False

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("a pool backend needs at least one worker")
        self.max_workers = max_workers
        self._context: WorkerContext | None = None
        self._executor: Executor | None = None
        self._pool_size = 0
        self._init_supervision()

    def prepare(self, context: WorkerContext) -> None:
        if self._context is not None and self._executor is not None:
            if self._context is not context and (
                self._context.environment is not context.environment
                or self._context.detector is not context.detector
                or self._context.config != context.config
            ):
                # A live pool was initialised with different crawl state
                # (workers read seed/timeouts from the context they were
                # built with); a silent swap would keep crawling with the
                # old one.
                raise ConfigurationError(
                    "cannot reuse a running pool backend with a different "
                    "environment/detector/config; call shutdown() first"
                )
            return
        self._context = context

    def _make_executor(self, context: WorkerContext, workers: int) -> Executor:
        raise NotImplementedError

    def _submit(
        self,
        executor: Executor,
        shard: CrawlShard,
        crawl_day: int,
        fault: Callable[[], None] | None = None,
    ):
        raise NotImplementedError

    def execute(
        self,
        shards: Sequence[CrawlShard],
        crawl_day: int,
        on_detection: Callable[[SiteDetection], None] | None,
    ) -> Iterator[tuple[int, "CrawlResult | ShardFailure"]]:
        if self._context is None:
            raise ConfigurationError("backend used before prepare()")
        if not shards:
            return
        desired = min(self.max_workers or len(shards), len(shards))
        if self._executor is not None and desired > self._pool_size:
            # The live pool was sized by a smaller earlier crawl (e.g. a
            # warm-up); grow it rather than capping parallelism forever.
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._executor is None:
            self._pool_size = desired
            self._executor = self._make_executor(self._context, desired)
        if self._policy is None and self._fault_plan is None:
            futures = {self._submit(self._executor, shard, crawl_day): shard.index for shard in shards}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield futures[future], future.result()
            return
        yield from self._supervised_execute(shards, crawl_day)

    def _supervised_execute(
        self, shards: Sequence[CrawlShard], crawl_day: int
    ) -> Iterator[tuple[int, "CrawlResult | ShardFailure"]]:
        policy = self._policy or SupervisionPolicy()
        in_flight: dict = {}  # future -> (shard, attempt, deadline)
        waiting: list = []  # (ready_at, shard, attempt) scheduled resubmissions

        def submit(shard: CrawlShard, attempt: int) -> None:
            fault = self._next_fault(shard, attempt)
            future = self._submit(self._executor, shard, crawl_day, fault=fault)
            deadline = time.monotonic() + policy.timeout if policy.timeout else None
            in_flight[future] = (shard, attempt, deadline)

        def dispose(shard: CrawlShard, attempt: int, exc: BaseException):
            """Schedule a retry (returns None) or hand back a ShardFailure."""
            verdict, extra = self._failure_verdict(policy, shard, attempt, exc)
            if verdict == "retry":
                # Backoff without blocking the loop: the resubmission waits
                # in `waiting` while other shards keep completing.
                waiting.append((time.monotonic() + extra, shard, attempt + 1))
                return None
            return extra

        for shard in shards:
            submit(shard, 0)
        while in_flight or waiting:
            now = time.monotonic()
            due = [entry for entry in waiting if entry[0] <= now]
            if due:
                waiting[:] = [entry for entry in waiting if entry[0] > now]
                for _, shard, attempt in due:
                    submit(shard, attempt)
            if not in_flight:
                # Everything outstanding is backing off; sleep to the
                # earliest resubmission.
                time.sleep(max(0.0, min(entry[0] for entry in waiting) - now))
                continue
            # Bound the wait so attempt deadlines and due resubmissions are
            # noticed promptly; with neither in play, block like the
            # unsupervised loop does.
            horizon = [d for (_, _, d) in in_flight.values() if d is not None]
            horizon.extend(entry[0] for entry in waiting)
            poll = max(0.0, min(horizon) - now) + 0.005 if horizon else None
            done, _ = wait(set(in_flight), timeout=poll, return_when=FIRST_COMPLETED)
            for future in done:
                entry = in_flight.pop(future, None)
                if entry is None:
                    # A late result from an abandoned (timed-out) attempt or
                    # a pool rebuild; the shard was already re-dispatched.
                    continue
                shard, attempt, _ = entry
                try:
                    result = future.result()
                except BrokenExecutor as exc:
                    # A worker died (SIGKILL, OOM): the pool is unusable and
                    # every in-flight future fails with it.  Rebuild the pool
                    # in place — the shared payload and published site blocks
                    # are still live and re-attach as-is — and charge one
                    # attempt to every shard that was in flight: the killer
                    # cannot be attributed, but innocents succeed on retry
                    # while a poison shard exhausts its budget on repeats.
                    casualties = [(shard, attempt)]
                    casualties.extend((s, a) for (s, a, _) in in_flight.values())
                    in_flight.clear()
                    self.pool_rebuilds += 1
                    self._event(
                        "pool_rebuild",
                        error=f"{type(exc).__name__}: {exc}",
                        resubmitted=len(casualties),
                    )
                    self._executor.shutdown(wait=False)
                    self._executor = self._make_executor(self._context, self._pool_size)
                    for s, a in casualties:
                        failure = dispose(s, a, exc)
                        if failure is not None:
                            yield s.index, failure
                    break  # the rest of `done` died with the same pool
                except Exception as exc:
                    failure = dispose(shard, attempt, exc)
                    if failure is not None:
                        yield shard.index, failure
                else:
                    yield shard.index, result
            if policy.timeout:
                now = time.monotonic()
                for future, (shard, attempt, deadline) in list(in_flight.items()):
                    if deadline is None or now < deadline:
                        continue
                    # Abandon the attempt: a running future cannot be
                    # cancelled, so a genuinely hung worker keeps its slot
                    # until it wakes (its eventual result is discarded); a
                    # still-queued future is cancelled outright.  The
                    # deadline covers queue wait, so on a saturated pool a
                    # timeout may fire before the attempt ever ran — the
                    # retry simply queues again.
                    del in_flight[future]
                    future.cancel()
                    exc = ShardTimeout(
                        f"shard {shard.index} attempt {attempt + 1} exceeded "
                        f"{policy.timeout:g}s"
                    )
                    failure = dispose(shard, attempt, exc)
                    if failure is not None:
                        yield shard.index, failure

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._pool_size = 0
        self._context = None

    def __enter__(self) -> "_ExecutorBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class ThreadPoolBackend(_ExecutorBackend):
    """Fan shards out to a persistent thread pool.

    Page-load simulation is numpy-heavy enough that threads overlap some
    work; more importantly the backend exercises the exact fan-out/merge
    path of :class:`ProcessPoolBackend` without pickling, making it the
    cheap way to test parallel semantics.  Each worker thread owns one
    detector clone for its whole lifetime (built by the pool initializer),
    replacing the old per-shard ``copy.deepcopy``.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__(max_workers)
        self._local = threading.local()

    def _make_executor(self, context: WorkerContext, workers: int) -> Executor:
        return ThreadPoolExecutor(
            max_workers=workers,
            initializer=_init_thread_worker,
            initargs=(self._local, context),
        )

    def _submit(
        self,
        executor: Executor,
        shard: CrawlShard,
        crawl_day: int,
        fault: Callable[[], None] | None = None,
    ):
        return executor.submit(
            _run_shard_in_thread, self._local, self._context, shard, crawl_day, fault
        )


class ProcessPoolBackend(_ExecutorBackend):
    """Fan shards out to persistent worker processes (true CPU parallelism).

    Worker processes start pickle-free: the environment/detector/config
    payload is serialised exactly once — into a shared-memory block every
    worker attaches to — and each crawl's site list is published the same
    way, so shard tasks ship only a handful of integers instead of their
    publishers.  Blocks are refcounted and unlinked on :meth:`shutdown`
    (reached through ``CrawlEngine.close``).  Worker processes are fully
    isolated from the caller by construction.
    """

    name = "process"

    #: How many distinct published site lists to keep alive (a longitudinal
    #: campaign alternates between at most a couple — discovery + re-crawl).
    SITE_BLOCK_LIMIT = 4

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__(max_workers)
        self._payload: SharedPayload | None = None
        # Published site lists: (sites, block), most recently used last.
        self._site_blocks: list[tuple[list[Publisher], SharedPayload]] = []
        self._current_sites: tuple[list[Publisher], SharedPayload] | None = None
        #: Lifetime task counters: shard tasks that referenced a shared site
        #: list vs tasks that had to ship their publishers (no published
        #: list, or a list whose elements did not match the shard's).  The
        #: benchmark reports these so a silent fall-off of the zero-copy
        #: path is visible.
        self.shared_site_tasks = 0
        self.fallback_tasks = 0

    def publish_sites(self, sites: Sequence[Publisher]) -> None:
        """Publish the crawl's canonical site list in shared memory.

        Re-publishing the same list (element-identical, the warm-crawl case)
        reuses the existing block, so a 34-day campaign ships its population
        across the process boundary once, not once per day.
        """
        sites = list(sites)
        for position, (known, block) in enumerate(self._site_blocks):
            if len(known) == len(sites) and all(a is b for a, b in zip(known, sites)):
                self._site_blocks.append(self._site_blocks.pop(position))
                self._current_sites = (known, block)
                return
        block = SharedPayload(sites)
        self._site_blocks.append((sites, block))
        self._current_sites = (sites, block)
        while len(self._site_blocks) > self.SITE_BLOCK_LIMIT:
            _, stale = self._site_blocks.pop(0)
            stale.release()

    def _make_executor(self, context: WorkerContext, workers: int) -> Executor:
        if self._payload is None or not self._payload.live:
            self._payload = SharedPayload(
                (context.environment, context.detector, context.config)
            )
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_process_worker,
            initargs=(self._payload.name, self._payload.size),
        )

    def _submit(
        self,
        executor: Executor,
        shard: CrawlShard,
        crawl_day: int,
        fault: Callable[[], None] | None = None,
    ):
        if self._current_sites is not None:
            sites, block = self._current_sites
            start, length = shard.start, len(shard.publishers)
            if start + length <= len(sites) and all(
                a is b for a, b in zip(sites[start : start + length], shard.publishers)
            ):
                self.shared_site_tasks += 1
                return executor.submit(
                    _run_shard_from_shared_sites,
                    block.name,
                    block.size,
                    shard.index,
                    start,
                    length,
                    shard.shard_seed,
                    crawl_day,
                    fault,
                )
        self.fallback_tasks += 1
        return executor.submit(_run_shard_in_process, shard, crawl_day, fault)

    def shutdown(self) -> None:
        super().shutdown()
        if self._payload is not None:
            self._payload.release()
            self._payload = None
        for _, block in self._site_blocks:
            block.release()
        self._site_blocks = []
        self._current_sites = None


def backend_from_name(name: str, *, workers: int | None = None) -> ExecutionBackend:
    """Build a backend from its configuration name."""
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadPoolBackend(max_workers=workers)
    if name == "process":
        return ProcessPoolBackend(max_workers=workers)
    raise ConfigurationError(
        f"unknown execution backend {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
    )


# ---------------------------------------------------------------------------
# The engine


class DetectionSinkLike(Protocol):
    """Anything detections can be streamed to (see ``CrawlStorage.open_sink``).

    Sinks may additionally expose ``flush()``; the engine then flushes at
    every shard boundary (and buffered sinks flush themselves on close).
    """

    def write(self, detection: SiteDetection) -> None: ...


class CrawlEngine:
    """Shards a crawl, fans it out to a backend, and merges canonically.

    Parameters
    ----------
    environment / detector:
        The simulated demand side and the detection tool; each worker builds
        its own long-lived context from them (clone per thread, one pickled
        copy per process) instead of receiving copies per shard.
    config:
        Operational crawl parameters; ``config.workers`` and
        ``config.backend`` choose the default execution strategy, and the
        ``shard_retries`` / ``shard_timeout`` / ``retry_backoff`` /
        ``quarantine`` knobs configure the supervision layer.
    backend:
        Explicit backend instance, overriding the config-derived one.
    fault_plan:
        Optional :class:`repro.testing.FaultPlan`; the engine installs it on
        the backend (shard-level crash/hang/raise faults) and wraps the sink
        with it (transient write failures).  Supervision must absorb every
        injected fault without changing a byte of output.

    Pool backends keep their workers alive between :meth:`crawl` calls;
    call :meth:`close` (or use ``with CrawlEngine(...) as engine:``) to
    release them deterministically.
    """

    def __init__(
        self,
        environment: AuctionEnvironment,
        detector: HBDetector,
        config: CrawlConfig | None = None,
        backend: ExecutionBackend | None = None,
        fault_plan=None,
    ) -> None:
        self.environment = environment
        self.detector = detector
        self.config = config or CrawlConfig()
        self.backend = backend or backend_from_name(
            self.config.backend, workers=self.config.workers
        )
        self.fault_plan = fault_plan
        self._context = WorkerContext.build(self.environment, self.detector, self.config)

    def _fault_event(self, kind: str, **data) -> None:
        """Append one supervision event to ``config.fault_log`` (best effort).

        JSON lines, parent-process only; the campaign service tails this
        file into SSE ``fault`` events.  Log I/O failures are swallowed —
        observability must never take down a crawl that supervision just
        saved.
        """
        path = self.config.fault_log
        if not path:
            return
        record = {"event": kind, "ts": round(time.time(), 3), **data}
        try:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:  # pragma: no cover - best-effort log
            pass

    def _supervision_counts(self) -> tuple[int, int]:
        return (
            getattr(self.backend, "retries", 0),
            getattr(self.backend, "pool_rebuilds", 0),
        )

    def plan(self, publishers: Sequence[Publisher] | PublisherPopulation) -> CrawlPlan:
        """The shard plan this engine would use for ``publishers``."""
        return CrawlPlan.build(
            publishers,
            workers=self.config.workers,
            seed=self.config.seed,
            oversubscribe=self.config.shard_oversubscribe,
        )

    def close(self) -> None:
        """Release pooled workers (safe to call twice; engine reusable after)."""
        self.backend.shutdown()

    def __enter__(self) -> "CrawlEngine":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        try:
            self.close()
        except Exception:
            # A pool-teardown failure while unwinding a crawl error must not
            # mask the original exception; surface it only on a clean exit.
            if exc_type is None:
                raise

    def crawl(
        self,
        publishers: Sequence[Publisher] | PublisherPopulation,
        *,
        crawl_day: int = 0,
        progress: ProgressCallback | None = None,
        sink: DetectionSinkLike | None = None,
        checkpoint: "CrawlCheckpointer | None" = None,
    ) -> CrawlResult:
        """Visit every publisher once and run detection on each page load.

        Detections reach ``progress`` and ``sink`` incrementally, always in
        canonical site order: page by page on inline backends (serial), and
        shard by shard — as soon as every earlier shard has completed — on
        pool backends.  Sinks with a ``flush()`` method are flushed at every
        shard boundary.

        ``checkpoint`` makes the crawl resumable: progress is recorded at
        shard boundaries (throttled by ``config.checkpoint_every_shards``),
        and if the checkpointer was resumed from a previous interrupted run
        the completed leading shards are skipped, their detections recovered
        from the sink file instead of re-crawled, and the merged result —
        and the sink bytes — are identical to an uninterrupted run.  A
        checkpointed crawl requires a sink (recovery replays its file), and
        recovered detections are not re-streamed to ``sink``/``progress``.
        """
        plan = self.plan(publishers)
        policy = SupervisionPolicy.from_config(self.config)
        if self.fault_plan is not None and sink is not None:
            sink = self.fault_plan.wrap_sink(sink)
        prior = CrawlResult()
        skip = 0
        if checkpoint is not None:
            if sink is None:
                raise ConfigurationError(
                    "a checkpointed crawl needs a sink: resume recovers "
                    "completed shards from the sink file"
                )
            prior, skip = checkpoint.begin_phase(plan, crawl_day, sink)
        emitted = len(prior.detections)
        degraded = False
        sink_retries = 0

        def write_detection(detection: SiteDetection) -> None:
            # Transient sink failures get the same backoff policy as shard
            # retries; a failed write leaves buffered sinks intact, so the
            # retry re-writes exactly the same record.
            nonlocal sink_retries
            attempt = 0
            while True:
                try:
                    sink.write(detection)  # type: ignore[union-attr]
                    return
                except StorageError as exc:
                    if attempt >= policy.retries:
                        raise
                    attempt += 1
                    sink_retries += 1
                    self._fault_event(
                        "sink_retry", attempt=attempt, error=f"{type(exc).__name__}: {exc}"
                    )
                    time.sleep(policy.delay("sink-write", attempt))

        def emit(detection: SiteDetection) -> None:
            nonlocal emitted
            if degraded:
                # An inline backend already hit a quarantined shard: every
                # later shard is past the gap and its detections can never
                # be part of this run's canonical prefix.
                return
            emitted += 1
            if sink is not None:
                write_detection(detection)
            if progress is not None:
                progress(emitted, plan.n_sites, detection)

        remaining = plan.shards[skip:]
        if not remaining:
            # The whole phase was recovered from the checkpoint: don't spin
            # up pool workers (and pickle the environment into them) for a
            # no-op replay.
            return prior

        inline = self.backend.streams_inline
        self.backend.prepare(self._context)
        install_supervision = getattr(self.backend, "set_supervision", None)
        if install_supervision is not None:
            install_supervision(policy, self._fault_event)
        install_plan = getattr(self.backend, "set_fault_plan", None)
        if install_plan is not None:
            install_plan(self.fault_plan)
        counts_before = self._supervision_counts()
        publish_sites = getattr(self.backend, "publish_sites", None)
        if publish_sites is not None:
            # The canonical order (shard concatenation) guarantees element
            # identity between the published list and every shard slice.
            publish_sites([p for shard in plan.shards for p in shard.publishers])
        raw_flush = getattr(sink, "flush", None) if sink is not None else None

        def _flush_with_retry() -> None:
            nonlocal sink_retries
            attempt = 0
            while True:
                try:
                    raw_flush()  # type: ignore[misc]
                    return
                except StorageError as exc:
                    # A failed flush keeps the sink's buffer, so retrying
                    # re-flushes the same payload.
                    if attempt >= policy.retries:
                        raise
                    attempt += 1
                    sink_retries += 1
                    self._fault_event(
                        "sink_retry", attempt=attempt, error=f"{type(exc).__name__}: {exc}"
                    )
                    time.sleep(policy.delay("sink-flush", attempt))

        sink_flush = _flush_with_retry if raw_flush is not None else None
        # Phase-cumulative counters for checkpointing (resumed prefix included).
        n_detections = len(prior.detections)
        pages_visited = prior.pages_visited
        sessions_started = prior.sessions_started
        timed_out = list(prior.timed_out_domains)
        checkpoint_every = self.config.checkpoint_every_shards
        boundaries = 0
        n_shards = len(plan.shards)
        # `execute` yields in completion order; shards are emitted (and
        # ultimately merged) in shard order, holding back any that finish
        # early. Every shard is yielded exactly once, so `ordered` is
        # complete when the loop ends.
        ordered: list[CrawlResult] = []
        early: dict[int, CrawlResult] = {}
        failures: dict[int, ShardFailure] = {}
        for shard_index, shard_result in self.backend.execute(
            remaining, crawl_day, emit if inline else None
        ):
            if isinstance(shard_result, ShardFailure):
                # Quarantined: the in-order walk below stops at this index,
                # so nothing at or past the first failure is emitted or
                # checkpointed. The backend keeps draining, discovering
                # every poison shard in one degraded pass.
                failures[shard_index] = shard_result
                if inline:
                    degraded = True
                continue
            early[shard_index] = shard_result
            at_boundary = False
            while skip + len(ordered) in early:
                ready = early.pop(skip + len(ordered))
                if not inline:
                    for detection in ready.detections:
                        emit(detection)
                ordered.append(ready)
                n_detections += len(ready.detections)
                pages_visited += ready.pages_visited
                sessions_started += ready.sessions_started
                timed_out.extend(ready.timed_out_domains)
                at_boundary = True
                # Flush once per in-order shard, not once per ready batch:
                # parallel backends hand back shards in completion order, and
                # a per-batch flush would make the columnar store's chunk
                # boundaries depend on arrival timing.  Per-shard flushing
                # keeps sink bytes a pure function of (shard contents,
                # flush_every) for every backend and worker count.
                if sink_flush is not None:
                    sink_flush()
            if at_boundary:
                if checkpoint is not None:
                    boundaries += 1
                    done = skip + len(ordered) == n_shards
                    checkpoint.record_progress(
                        crawl_day,
                        completed_shards=skip + len(ordered),
                        n_detections=n_detections,
                        pages_visited=pages_visited,
                        sessions_started=sessions_started,
                        timed_out_domains=tuple(timed_out),
                        sink_offset=sink.offset,  # type: ignore[union-attr]
                        persist=done or boundaries % checkpoint_every == 0,
                    )
        result = prior.merge(CrawlResult.merged(ordered))
        retries_after, rebuilds_after = self._supervision_counts()
        result.retries += retries_after - counts_before[0]
        result.pool_rebuilds += rebuilds_after - counts_before[1]
        result.sink_retries += sink_retries
        if failures:
            quarantined = tuple(failures[index] for index in sorted(failures))
            result.quarantined_shards = result.quarantined_shards + quarantined
            self._fault_event(
                "degraded",
                crawl_day=crawl_day,
                quarantined=[failure.shard_index for failure in quarantined],
            )
            if checkpoint is not None:
                # Persist the quarantine list (and the latest in-memory
                # progress, which may have been throttled) so a resume knows
                # exactly what is left to re-crawl.
                checkpoint.record_quarantine(crawl_day, quarantined)
        return result

    def crawl_domains(
        self,
        population: PublisherPopulation,
        domains: Iterable[str],
        *,
        crawl_day: int = 0,
        progress: ProgressCallback | None = None,
        sink: DetectionSinkLike | None = None,
        checkpoint: "CrawlCheckpointer | None" = None,
    ) -> CrawlResult:
        """Crawl a subset of a population selected by domain name."""
        publishers = [population.by_domain(domain) for domain in domains]
        return self.crawl(
            publishers,
            crawl_day=crawl_day,
            progress=progress,
            sink=sink,
            checkpoint=checkpoint,
        )
