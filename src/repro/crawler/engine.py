"""Parallel crawl engine with pluggable execution backends.

The paper's workload is embarrassingly parallel across sites: one discovery
pass over the 35k-site top list, then daily re-crawls of the ~5k HB-enabled
sites.  This module splits a publisher list into deterministic shards
(:class:`CrawlPlan`), fans the shards out to workers through an
:class:`ExecutionBackend` (serial, thread pool, or process pool), and merges
the per-shard :class:`~repro.crawler.crawler.CrawlResult` objects back in
canonical site order.

Worker-scoped environment reuse
-------------------------------
Workers do **not** receive the environment and detector per shard.  Each
backend builds a :class:`WorkerContext` once per worker — at pool start via
the executor ``initializer`` hook — and shard tasks then ship only the
:class:`CrawlShard` descriptor plus the visit index.  On the process backend
the environment/detector payload is pickled exactly once per worker process
(instead of once per shard per crawl); on the thread backend each worker
thread owns one cheap :meth:`~repro.detector.detector.HBDetector.clone`
(instead of a ``copy.deepcopy`` per shard).  Pools persist across
:meth:`CrawlEngine.crawl` calls, so a 34-day longitudinal campaign pays the
worker setup cost once, not once per day.  Call :meth:`CrawlEngine.close`
(or use the engine as a context manager) to release pool workers.

Determinism guarantee
---------------------
Every page load derives its RNG stream from ``(seed, domain, visit_index)``
(see :meth:`repro.browser.engine.BrowserEngine.load`), never from crawl
order, worker identity or shared session state.  Shards are contiguous
chunks of the input list and each shard additionally carries a seed derived
from ``(seed, "shard", index)`` for shard-local bookkeeping, so the plan
itself is a pure function of ``(sites, workers, seed)``.  Merging shard
results in shard-index order therefore reproduces the serial detection
sequence exactly: a crawl with ``workers=1`` and ``workers=8`` produces
byte-identical serialised detections, and reusing workers across shards or
crawls cannot change the bytes because the detector is reset at every shard
boundary and carries no cross-page state.

Streaming
---------
:meth:`CrawlEngine.crawl` accepts a ``sink`` (any object with a
``write(detection)`` method, e.g. :class:`repro.crawler.storage.DetectionSink`).
Detections are streamed to the sink in canonical order, instead of buffering
the whole crawl before persisting anything: the serial backend streams after
every page, pool backends stream each shard as soon as every earlier shard
has completed.  If the sink exposes a ``flush()`` method (buffered sinks do),
the engine calls it at every shard boundary, so a buffered sink never holds
more than one shard's tail of detections in memory.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Protocol, Sequence

from repro.crawler.crawler import BACKEND_NAMES, CrawlConfig, CrawlResult, ProgressCallback
from repro.crawler.session import CrawlSession
from repro.detector.detector import HBDetector
from repro.detector.records import SiteDetection
from repro.ecosystem.publishers import Publisher, PublisherPopulation
from repro.errors import ConfigurationError
from repro.hb.environment import AuctionEnvironment
from repro.utils.rng import stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.crawler.checkpoint import CrawlCheckpointer

__all__ = [
    "CrawlShard",
    "CrawlPlan",
    "WorkerContext",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "CrawlEngine",
    "DetectionSinkLike",
    "backend_from_name",
    "BACKEND_NAMES",
]


# ---------------------------------------------------------------------------
# Sharding


@dataclass(frozen=True)
class CrawlShard:
    """One contiguous slice of the canonical site list, owned by one worker."""

    index: int
    #: Position of the shard's first site in the canonical (input) order.
    start: int
    publishers: tuple[Publisher, ...]
    #: Seed derived from ``(plan seed, "shard", index)``; reserved for
    #: shard-local decisions.  Page-level RNG is keyed by
    #: ``(seed, domain, visit_index)`` and deliberately ignores this, which is
    #: what keeps results independent of the worker count.
    shard_seed: int

    def __len__(self) -> int:
        return len(self.publishers)


@dataclass(frozen=True)
class CrawlPlan:
    """A deterministic partition of a publisher list into crawl shards."""

    seed: int
    n_sites: int
    shards: tuple[CrawlShard, ...]

    @classmethod
    def build(
        cls,
        publishers: Sequence[Publisher] | PublisherPopulation,
        *,
        workers: int = 1,
        seed: int = 2019,
    ) -> "CrawlPlan":
        """Split ``publishers`` into at most ``workers`` balanced shards.

        The split is contiguous (shard *i* holds an unbroken run of the input
        order) and a pure function of ``(publishers, workers, seed)``: the
        first ``len(publishers) % n`` shards receive one extra site.
        """
        if workers < 1:
            raise ConfigurationError("a crawl plan needs at least one worker")
        sites = list(publishers)
        n_shards = max(1, min(workers, len(sites)))
        base, extra = divmod(len(sites), n_shards)
        shards = []
        start = 0
        for index in range(n_shards):
            size = base + (1 if index < extra else 0)
            shards.append(
                CrawlShard(
                    index=index,
                    start=start,
                    publishers=tuple(sites[start : start + size]),
                    shard_seed=stable_hash(seed, "shard", index),
                )
            )
            start += size
        return cls(seed=seed, n_sites=len(sites), shards=tuple(shards))

    @property
    def site_order(self) -> tuple[str, ...]:
        """Domains in canonical order (concatenation of the shards)."""
        return tuple(p.domain for shard in self.shards for p in shard.publishers)


# ---------------------------------------------------------------------------
# The per-worker context and the per-shard worker


@dataclass
class WorkerContext:
    """Crawl state one worker owns for its whole lifetime.

    Built once per worker (not once per shard): the serial backend wraps the
    caller's own objects, the thread backend clones the detector per worker
    thread, and the process backend ships the context to each worker process
    exactly once through the executor initializer.
    """

    environment: AuctionEnvironment
    detector: HBDetector
    config: CrawlConfig


def _crawl_shard(
    context: WorkerContext,
    crawl_day: int,
    on_detection: Callable[[SiteDetection], None] | None,
    shard: CrawlShard,
) -> CrawlResult:
    """Crawl one shard using the worker's long-lived context.

    The detector is reset at shard start, so reusing one worker for many
    shards (or many crawl days) is observationally identical to giving every
    shard a fresh detector.  Sessions are created lazily: after a timeout or
    a scheduled restart the replacement is only spawned if another site
    remains, so the final page of a shard never bumps ``sessions_started``
    for a session that loads nothing.

    ``on_detection`` fires after every page; backends that run shards inline
    in the calling thread (``streams_inline``) use it for page-granular
    streaming, pool backends pass ``None`` and stream per completed shard.
    """
    environment, detector, config = context.environment, context.detector, context.config
    detector.reset()
    result = CrawlResult()
    session: CrawlSession | None = None
    for publisher in shard.publishers:
        if session is None:
            session = CrawlSession(
                environment=environment,
                seed=config.seed,
                page_load_timeout_ms=config.page_load_timeout_ms,
                extra_dwell_ms=config.extra_dwell_ms,
            )
            result.sessions_started += 1
        page = session.load(publisher, visit_index=crawl_day)
        result.pages_visited += 1
        if page.timed_out:
            # The paper kills the instance after 60 s and moves on; the
            # partially loaded page still yields whatever was observed.
            result.timed_out_domains.append(publisher.domain)
            session.kill()
            session = None
        detection = detector.inspect_page(page, crawl_day=crawl_day)
        result.detections.append(detection)
        if on_detection is not None:
            on_detection(detection)
        if session is not None and session.pages_loaded >= config.restart_every_pages:
            session.kill()
            session = None
    if session is not None:
        session.kill()
    return result


#: Per-process worker context, populated by the process pool initializer.
#: Lives at module scope so shard tasks reach it without any per-task payload.
_PROCESS_CONTEXT: WorkerContext | None = None


def _init_process_worker(
    environment: AuctionEnvironment, detector: HBDetector, config: CrawlConfig
) -> None:
    """Process pool initializer: unpickle the context once per worker process."""
    global _PROCESS_CONTEXT
    _PROCESS_CONTEXT = WorkerContext(environment=environment, detector=detector, config=config)


def _run_shard_in_process(shard: CrawlShard, crawl_day: int) -> CrawlResult:
    """Entry point for process-pool shard tasks (only the descriptor ships)."""
    context = _PROCESS_CONTEXT
    if context is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("process worker used before its context was initialised")
    return _crawl_shard(context, crawl_day, None, shard)


def _init_thread_worker(local: threading.local, prototype: WorkerContext) -> None:
    """Thread pool initializer: give the worker thread its own detector clone."""
    local.context = WorkerContext(
        environment=prototype.environment,
        detector=prototype.detector.clone(),
        config=prototype.config,
    )


def _run_shard_in_thread(
    local: threading.local, prototype: WorkerContext, shard: CrawlShard, crawl_day: int
) -> CrawlResult:
    """Entry point for thread-pool shard tasks, using the thread's context."""
    context = getattr(local, "context", None)
    if context is None:  # pragma: no cover - defensive: initializer always runs
        _init_thread_worker(local, prototype)
        context = local.context
    return _crawl_shard(context, crawl_day, None, shard)


# ---------------------------------------------------------------------------
# Execution backends


class ExecutionBackend(Protocol):
    """Strategy for running shard tasks; yields results in completion order."""

    name: str
    #: Whether shards run inline in the calling thread, in shard order — in
    #: which case the engine streams detections page by page through the
    #: worker's ``on_detection`` hook instead of per completed shard.
    streams_inline: bool

    def prepare(self, context: WorkerContext) -> None:
        """Install the crawl state workers will reuse across shards/crawls."""
        ...

    def execute(
        self,
        shards: Sequence[CrawlShard],
        crawl_day: int,
        on_detection: Callable[[SiteDetection], None] | None,
    ) -> Iterator[tuple[int, CrawlResult]]:
        """Run every shard, yielding ``(shard_index, result)``."""
        ...

    def shutdown(self) -> None:
        """Release any pooled workers (idempotent)."""
        ...


class SerialBackend:
    """Run shards one after another in the calling thread (the default).

    The single worker is the caller itself, so the context wraps the engine's
    own environment/detector without any copy — exactly the paper's
    sequential crawl.
    """

    name = "serial"
    streams_inline = True

    def __init__(self) -> None:
        self._context: WorkerContext | None = None

    def prepare(self, context: WorkerContext) -> None:
        self._context = context

    def execute(
        self,
        shards: Sequence[CrawlShard],
        crawl_day: int,
        on_detection: Callable[[SiteDetection], None] | None,
    ) -> Iterator[tuple[int, CrawlResult]]:
        if self._context is None:
            raise ConfigurationError("backend used before prepare()")
        for shard in shards:
            yield shard.index, _crawl_shard(self._context, crawl_day, on_detection, shard)

    def shutdown(self) -> None:
        self._context = None


class _ExecutorBackend:
    """Shared machinery for ``concurrent.futures`` based backends.

    The executor is created lazily on first use and then *persists* across
    ``execute()`` calls, so per-worker setup (context build, environment
    pickling) happens once per worker for the backend's whole lifetime
    instead of once per crawl.  ``shutdown()`` releases the pool.
    """

    name = "executor"
    streams_inline = False

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("a pool backend needs at least one worker")
        self.max_workers = max_workers
        self._context: WorkerContext | None = None
        self._executor: Executor | None = None
        self._pool_size = 0

    def prepare(self, context: WorkerContext) -> None:
        if self._context is not None and self._executor is not None:
            if self._context is not context and (
                self._context.environment is not context.environment
                or self._context.detector is not context.detector
                or self._context.config != context.config
            ):
                # A live pool was initialised with different crawl state
                # (workers read seed/timeouts from the context they were
                # built with); a silent swap would keep crawling with the
                # old one.
                raise ConfigurationError(
                    "cannot reuse a running pool backend with a different "
                    "environment/detector/config; call shutdown() first"
                )
            return
        self._context = context

    def _make_executor(self, context: WorkerContext, workers: int) -> Executor:
        raise NotImplementedError

    def _submit(self, executor: Executor, shard: CrawlShard, crawl_day: int):
        raise NotImplementedError

    def execute(
        self,
        shards: Sequence[CrawlShard],
        crawl_day: int,
        on_detection: Callable[[SiteDetection], None] | None,
    ) -> Iterator[tuple[int, CrawlResult]]:
        if self._context is None:
            raise ConfigurationError("backend used before prepare()")
        if not shards:
            return
        desired = min(self.max_workers or len(shards), len(shards))
        if self._executor is not None and desired > self._pool_size:
            # The live pool was sized by a smaller earlier crawl (e.g. a
            # warm-up); grow it rather than capping parallelism forever.
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._executor is None:
            self._pool_size = desired
            self._executor = self._make_executor(self._context, desired)
        futures = {self._submit(self._executor, shard, crawl_day): shard.index for shard in shards}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                yield futures[future], future.result()

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._pool_size = 0
        self._context = None

    def __enter__(self) -> "_ExecutorBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class ThreadPoolBackend(_ExecutorBackend):
    """Fan shards out to a persistent thread pool.

    Page-load simulation is numpy-heavy enough that threads overlap some
    work; more importantly the backend exercises the exact fan-out/merge
    path of :class:`ProcessPoolBackend` without pickling, making it the
    cheap way to test parallel semantics.  Each worker thread owns one
    detector clone for its whole lifetime (built by the pool initializer),
    replacing the old per-shard ``copy.deepcopy``.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__(max_workers)
        self._local = threading.local()

    def _make_executor(self, context: WorkerContext, workers: int) -> Executor:
        return ThreadPoolExecutor(
            max_workers=workers,
            initializer=_init_thread_worker,
            initargs=(self._local, context),
        )

    def _submit(self, executor: Executor, shard: CrawlShard, crawl_day: int):
        return executor.submit(_run_shard_in_thread, self._local, self._context, shard, crawl_day)


class ProcessPoolBackend(_ExecutorBackend):
    """Fan shards out to persistent worker processes (true CPU parallelism).

    The environment/detector/config payload is pickled exactly once per
    worker process — by the pool initializer — after which shard tasks ship
    only their :class:`CrawlShard` descriptor and the visit index.  Worker
    processes are fully isolated from the caller by construction.
    """

    name = "process"

    def _make_executor(self, context: WorkerContext, workers: int) -> Executor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_process_worker,
            initargs=(context.environment, context.detector, context.config),
        )

    def _submit(self, executor: Executor, shard: CrawlShard, crawl_day: int):
        return executor.submit(_run_shard_in_process, shard, crawl_day)


def backend_from_name(name: str, *, workers: int | None = None) -> ExecutionBackend:
    """Build a backend from its configuration name."""
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadPoolBackend(max_workers=workers)
    if name == "process":
        return ProcessPoolBackend(max_workers=workers)
    raise ConfigurationError(
        f"unknown execution backend {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
    )


# ---------------------------------------------------------------------------
# The engine


class DetectionSinkLike(Protocol):
    """Anything detections can be streamed to (see ``CrawlStorage.open_sink``).

    Sinks may additionally expose ``flush()``; the engine then flushes at
    every shard boundary (and buffered sinks flush themselves on close).
    """

    def write(self, detection: SiteDetection) -> None: ...


class CrawlEngine:
    """Shards a crawl, fans it out to a backend, and merges canonically.

    Parameters
    ----------
    environment / detector:
        The simulated demand side and the detection tool; each worker builds
        its own long-lived context from them (clone per thread, one pickled
        copy per process) instead of receiving copies per shard.
    config:
        Operational crawl parameters; ``config.workers`` and
        ``config.backend`` choose the default execution strategy.
    backend:
        Explicit backend instance, overriding the config-derived one.

    Pool backends keep their workers alive between :meth:`crawl` calls;
    call :meth:`close` (or use ``with CrawlEngine(...) as engine:``) to
    release them deterministically.
    """

    def __init__(
        self,
        environment: AuctionEnvironment,
        detector: HBDetector,
        config: CrawlConfig | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        self.environment = environment
        self.detector = detector
        self.config = config or CrawlConfig()
        self.backend = backend or backend_from_name(
            self.config.backend, workers=self.config.workers
        )
        self._context = WorkerContext(
            environment=self.environment, detector=self.detector, config=self.config
        )

    def plan(self, publishers: Sequence[Publisher] | PublisherPopulation) -> CrawlPlan:
        """The shard plan this engine would use for ``publishers``."""
        return CrawlPlan.build(
            publishers, workers=self.config.workers, seed=self.config.seed
        )

    def close(self) -> None:
        """Release pooled workers (safe to call twice; engine reusable after)."""
        self.backend.shutdown()

    def __enter__(self) -> "CrawlEngine":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        try:
            self.close()
        except Exception:
            # A pool-teardown failure while unwinding a crawl error must not
            # mask the original exception; surface it only on a clean exit.
            if exc_type is None:
                raise

    def crawl(
        self,
        publishers: Sequence[Publisher] | PublisherPopulation,
        *,
        crawl_day: int = 0,
        progress: ProgressCallback | None = None,
        sink: DetectionSinkLike | None = None,
        checkpoint: "CrawlCheckpointer | None" = None,
    ) -> CrawlResult:
        """Visit every publisher once and run detection on each page load.

        Detections reach ``progress`` and ``sink`` incrementally, always in
        canonical site order: page by page on inline backends (serial), and
        shard by shard — as soon as every earlier shard has completed — on
        pool backends.  Sinks with a ``flush()`` method are flushed at every
        shard boundary.

        ``checkpoint`` makes the crawl resumable: progress is recorded at
        shard boundaries (throttled by ``config.checkpoint_every_shards``),
        and if the checkpointer was resumed from a previous interrupted run
        the completed leading shards are skipped, their detections recovered
        from the sink file instead of re-crawled, and the merged result —
        and the sink bytes — are identical to an uninterrupted run.  A
        checkpointed crawl requires a sink (recovery replays its file), and
        recovered detections are not re-streamed to ``sink``/``progress``.
        """
        plan = self.plan(publishers)
        prior = CrawlResult()
        skip = 0
        if checkpoint is not None:
            if sink is None:
                raise ConfigurationError(
                    "a checkpointed crawl needs a sink: resume recovers "
                    "completed shards from the sink file"
                )
            prior, skip = checkpoint.begin_phase(plan, crawl_day, sink)
        emitted = len(prior.detections)

        def emit(detection: SiteDetection) -> None:
            nonlocal emitted
            emitted += 1
            if sink is not None:
                sink.write(detection)
            if progress is not None:
                progress(emitted, plan.n_sites, detection)

        remaining = plan.shards[skip:]
        if not remaining:
            # The whole phase was recovered from the checkpoint: don't spin
            # up pool workers (and pickle the environment into them) for a
            # no-op replay.
            return prior

        inline = self.backend.streams_inline
        self.backend.prepare(self._context)
        sink_flush = getattr(sink, "flush", None) if sink is not None else None
        # Phase-cumulative counters for checkpointing (resumed prefix included).
        n_detections = len(prior.detections)
        pages_visited = prior.pages_visited
        sessions_started = prior.sessions_started
        timed_out = list(prior.timed_out_domains)
        checkpoint_every = self.config.checkpoint_every_shards
        boundaries = 0
        n_shards = len(plan.shards)
        # `execute` yields in completion order; shards are emitted (and
        # ultimately merged) in shard order, holding back any that finish
        # early. Every shard is yielded exactly once, so `ordered` is
        # complete when the loop ends.
        ordered: list[CrawlResult] = []
        early: dict[int, CrawlResult] = {}
        for shard_index, shard_result in self.backend.execute(
            remaining, crawl_day, emit if inline else None
        ):
            early[shard_index] = shard_result
            at_boundary = False
            while skip + len(ordered) in early:
                ready = early.pop(skip + len(ordered))
                if not inline:
                    for detection in ready.detections:
                        emit(detection)
                ordered.append(ready)
                n_detections += len(ready.detections)
                pages_visited += ready.pages_visited
                sessions_started += ready.sessions_started
                timed_out.extend(ready.timed_out_domains)
                at_boundary = True
            if at_boundary:
                if sink_flush is not None:
                    sink_flush()
                if checkpoint is not None:
                    boundaries += 1
                    done = skip + len(ordered) == n_shards
                    checkpoint.record_progress(
                        crawl_day,
                        completed_shards=skip + len(ordered),
                        n_detections=n_detections,
                        pages_visited=pages_visited,
                        sessions_started=sessions_started,
                        timed_out_domains=tuple(timed_out),
                        sink_offset=sink.offset,  # type: ignore[union-attr]
                        persist=done or boundaries % checkpoint_every == 0,
                    )
        return prior.merge(CrawlResult.merged(ordered))

    def crawl_domains(
        self,
        population: PublisherPopulation,
        domains: Iterable[str],
        *,
        crawl_day: int = 0,
        progress: ProgressCallback | None = None,
        sink: DetectionSinkLike | None = None,
        checkpoint: "CrawlCheckpointer | None" = None,
    ) -> CrawlResult:
        """Crawl a subset of a population selected by domain name."""
        publishers = [population.by_domain(domain) for domain in domains]
        return self.crawl(
            publishers,
            crawl_day=crawl_day,
            progress=progress,
            sink=sink,
            checkpoint=checkpoint,
        )
