"""Parallel crawl engine with pluggable execution backends.

The paper's workload is embarrassingly parallel across sites: one discovery
pass over the 35k-site top list, then daily re-crawls of the ~5k HB-enabled
sites.  This module splits a publisher list into deterministic shards
(:class:`CrawlPlan`), fans the shards out to workers through an
:class:`ExecutionBackend` (serial, thread pool, or process pool), and merges
the per-shard :class:`~repro.crawler.crawler.CrawlResult` objects back in
canonical site order.

Determinism guarantee
---------------------
Every page load derives its RNG stream from ``(seed, domain, visit_index)``
(see :meth:`repro.browser.engine.BrowserEngine.load`), never from crawl
order or shared session state.  Shards are contiguous chunks of the input
list and each shard additionally carries a seed derived from
``(seed, "shard", index)`` for shard-local bookkeeping, so the plan itself is
a pure function of ``(sites, workers, seed)``.  Merging shard results in
shard-index order therefore reproduces the serial detection sequence exactly:
a crawl with ``workers=1`` and ``workers=8`` produces byte-identical
serialised detections.

Streaming
---------
:meth:`CrawlEngine.crawl` accepts a ``sink`` (any object with a
``write(detection)`` method, e.g. :class:`repro.crawler.storage.DetectionSink`).
Detections are streamed to the sink in canonical order, instead of buffering
the whole crawl before persisting anything: the serial backend streams after
every page, pool backends stream each shard as soon as every earlier shard
has completed.
"""

from __future__ import annotations

import copy
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, Iterator, Protocol, Sequence

from repro.crawler.crawler import BACKEND_NAMES, CrawlConfig, CrawlResult, ProgressCallback
from repro.crawler.session import CrawlSession
from repro.detector.detector import HBDetector
from repro.detector.records import SiteDetection
from repro.ecosystem.publishers import Publisher, PublisherPopulation
from repro.errors import ConfigurationError
from repro.hb.environment import AuctionEnvironment
from repro.utils.rng import stable_hash

__all__ = [
    "CrawlShard",
    "CrawlPlan",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "CrawlEngine",
    "DetectionSinkLike",
    "backend_from_name",
    "BACKEND_NAMES",
]


# ---------------------------------------------------------------------------
# Sharding


@dataclass(frozen=True)
class CrawlShard:
    """One contiguous slice of the canonical site list, owned by one worker."""

    index: int
    #: Position of the shard's first site in the canonical (input) order.
    start: int
    publishers: tuple[Publisher, ...]
    #: Seed derived from ``(plan seed, "shard", index)``; reserved for
    #: shard-local decisions.  Page-level RNG is keyed by
    #: ``(seed, domain, visit_index)`` and deliberately ignores this, which is
    #: what keeps results independent of the worker count.
    shard_seed: int

    def __len__(self) -> int:
        return len(self.publishers)


@dataclass(frozen=True)
class CrawlPlan:
    """A deterministic partition of a publisher list into crawl shards."""

    seed: int
    n_sites: int
    shards: tuple[CrawlShard, ...]

    @classmethod
    def build(
        cls,
        publishers: Sequence[Publisher] | PublisherPopulation,
        *,
        workers: int = 1,
        seed: int = 2019,
    ) -> "CrawlPlan":
        """Split ``publishers`` into at most ``workers`` balanced shards.

        The split is contiguous (shard *i* holds an unbroken run of the input
        order) and a pure function of ``(publishers, workers, seed)``: the
        first ``len(publishers) % n`` shards receive one extra site.
        """
        if workers < 1:
            raise ConfigurationError("a crawl plan needs at least one worker")
        sites = list(publishers)
        n_shards = max(1, min(workers, len(sites)))
        base, extra = divmod(len(sites), n_shards)
        shards = []
        start = 0
        for index in range(n_shards):
            size = base + (1 if index < extra else 0)
            shards.append(
                CrawlShard(
                    index=index,
                    start=start,
                    publishers=tuple(sites[start : start + size]),
                    shard_seed=stable_hash(seed, "shard", index),
                )
            )
            start += size
        return cls(seed=seed, n_sites=len(sites), shards=tuple(shards))

    @property
    def site_order(self) -> tuple[str, ...]:
        """Domains in canonical order (concatenation of the shards)."""
        return tuple(p.domain for shard in self.shards for p in shard.publishers)


# ---------------------------------------------------------------------------
# The per-shard worker

ShardTask = Callable[[CrawlShard], CrawlResult]


def _crawl_shard(
    environment: AuctionEnvironment,
    detector: HBDetector,
    config: CrawlConfig,
    crawl_day: int,
    isolate_detector: bool,
    on_detection: Callable[[SiteDetection], None] | None,
    shard: CrawlShard,
) -> CrawlResult:
    """Crawl one shard with its own session/detector pair.

    Module-level (not a closure) so :class:`ProcessPoolBackend` can pickle it.
    Sessions are created lazily: after a timeout or a scheduled restart the
    replacement is only spawned if another site remains, so the final page of
    a shard never bumps ``sessions_started`` for a session that loads nothing.

    ``on_detection`` fires after every page; backends that run shards inline
    in the calling thread (``streams_inline``) use it for page-granular
    streaming, pool backends pass ``None`` and stream per completed shard.
    """
    if isolate_detector:
        detector = copy.deepcopy(detector)
    result = CrawlResult()
    session: CrawlSession | None = None
    for publisher in shard.publishers:
        if session is None:
            session = CrawlSession(
                environment=environment,
                seed=config.seed,
                page_load_timeout_ms=config.page_load_timeout_ms,
                extra_dwell_ms=config.extra_dwell_ms,
            )
            result.sessions_started += 1
        page = session.load(publisher, visit_index=crawl_day)
        result.pages_visited += 1
        if page.timed_out:
            # The paper kills the instance after 60 s and moves on; the
            # partially loaded page still yields whatever was observed.
            result.timed_out_domains.append(publisher.domain)
            session.kill()
            session = None
        detection = detector.inspect_page(page, crawl_day=crawl_day)
        result.detections.append(detection)
        if on_detection is not None:
            on_detection(detection)
        if session is not None and session.pages_loaded >= config.restart_every_pages:
            session.kill()
            session = None
    if session is not None:
        session.kill()
    return result


# ---------------------------------------------------------------------------
# Execution backends


class ExecutionBackend(Protocol):
    """Strategy for running shard tasks; yields results in completion order."""

    name: str
    #: Whether shard workers share the calling process' memory, in which case
    #: the engine hands each worker a deep-copied detector.
    shares_memory: bool
    #: Whether shards run inline in the calling thread, in shard order — in
    #: which case the engine streams detections page by page through the
    #: worker's ``on_detection`` hook instead of per completed shard.
    streams_inline: bool

    def execute(
        self, task: ShardTask, shards: Sequence[CrawlShard]
    ) -> Iterator[tuple[int, CrawlResult]]:
        """Run ``task`` over every shard, yielding ``(shard_index, result)``."""
        ...


class SerialBackend:
    """Run shards one after another in the calling thread (the default)."""

    name = "serial"
    shares_memory = False  # single caller-owned worker; no copy needed
    streams_inline = True

    def execute(
        self, task: ShardTask, shards: Sequence[CrawlShard]
    ) -> Iterator[tuple[int, CrawlResult]]:
        for shard in shards:
            yield shard.index, task(shard)


class _ExecutorBackend:
    """Shared machinery for ``concurrent.futures`` based backends."""

    name = "executor"
    shares_memory = True
    streams_inline = False

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("a pool backend needs at least one worker")
        self.max_workers = max_workers

    def _make_executor(self, n_shards: int) -> Executor:
        raise NotImplementedError

    def execute(
        self, task: ShardTask, shards: Sequence[CrawlShard]
    ) -> Iterator[tuple[int, CrawlResult]]:
        if not shards:
            return
        with self._make_executor(len(shards)) as executor:
            futures = {executor.submit(task, shard): shard.index for shard in shards}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield futures[future], future.result()


class ThreadPoolBackend(_ExecutorBackend):
    """Fan shards out to a thread pool.

    Page-load simulation is numpy-heavy enough that threads overlap some
    work; more importantly the backend exercises the exact fan-out/merge
    path of :class:`ProcessPoolBackend` without pickling, making it the
    cheap way to test parallel semantics.
    """

    name = "thread"
    shares_memory = True

    def _make_executor(self, n_shards: int) -> Executor:
        workers = self.max_workers or n_shards
        return ThreadPoolExecutor(max_workers=min(workers, n_shards))


class ProcessPoolBackend(_ExecutorBackend):
    """Fan shards out to worker processes (true CPU parallelism).

    Every task ships the environment, detector and config to the worker via
    pickle, so each process owns fully isolated copies.
    """

    name = "process"
    shares_memory = False  # pickling already isolates state

    def _make_executor(self, n_shards: int) -> Executor:
        workers = self.max_workers or n_shards
        return ProcessPoolExecutor(max_workers=min(workers, n_shards))


def backend_from_name(name: str, *, workers: int | None = None) -> ExecutionBackend:
    """Build a backend from its configuration name."""
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadPoolBackend(max_workers=workers)
    if name == "process":
        return ProcessPoolBackend(max_workers=workers)
    raise ConfigurationError(
        f"unknown execution backend {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
    )


# ---------------------------------------------------------------------------
# The engine


class DetectionSinkLike(Protocol):
    """Anything detections can be streamed to (see ``CrawlStorage.open_sink``)."""

    def write(self, detection: SiteDetection) -> None: ...


class CrawlEngine:
    """Shards a crawl, fans it out to a backend, and merges canonically.

    Parameters
    ----------
    environment / detector:
        The simulated demand side and the detection tool; workers receive
        their own copies whenever they share memory with the caller.
    config:
        Operational crawl parameters; ``config.workers`` and
        ``config.backend`` choose the default execution strategy.
    backend:
        Explicit backend instance, overriding the config-derived one.
    """

    def __init__(
        self,
        environment: AuctionEnvironment,
        detector: HBDetector,
        config: CrawlConfig | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        self.environment = environment
        self.detector = detector
        self.config = config or CrawlConfig()
        self.backend = backend or backend_from_name(
            self.config.backend, workers=self.config.workers
        )

    def plan(self, publishers: Sequence[Publisher] | PublisherPopulation) -> CrawlPlan:
        """The shard plan this engine would use for ``publishers``."""
        return CrawlPlan.build(
            publishers, workers=self.config.workers, seed=self.config.seed
        )

    def crawl(
        self,
        publishers: Sequence[Publisher] | PublisherPopulation,
        *,
        crawl_day: int = 0,
        progress: ProgressCallback | None = None,
        sink: DetectionSinkLike | None = None,
    ) -> CrawlResult:
        """Visit every publisher once and run detection on each page load.

        Detections reach ``progress`` and ``sink`` incrementally, always in
        canonical site order: page by page on inline backends (serial), and
        shard by shard — as soon as every earlier shard has completed — on
        pool backends.
        """
        plan = self.plan(publishers)
        emitted = 0

        def emit(detection: SiteDetection) -> None:
            nonlocal emitted
            emitted += 1
            if sink is not None:
                sink.write(detection)
            if progress is not None:
                progress(emitted, plan.n_sites, detection)

        inline = self.backend.streams_inline
        task = partial(
            _crawl_shard,
            self.environment,
            self.detector,
            self.config,
            crawl_day,
            self.backend.shares_memory,
            emit if inline else None,
        )
        # `execute` yields in completion order; shards are emitted (and
        # ultimately merged) in shard order, holding back any that finish
        # early. Every shard is yielded exactly once, so `ordered` is
        # complete when the loop ends.
        ordered: list[CrawlResult] = []
        early: dict[int, CrawlResult] = {}
        for shard_index, shard_result in self.backend.execute(task, plan.shards):
            early[shard_index] = shard_result
            while len(ordered) in early:
                ready = early.pop(len(ordered))
                if not inline:
                    for detection in ready.detections:
                        emit(detection)
                ordered.append(ready)
        return CrawlResult.merged(ordered)

    def crawl_domains(
        self,
        population: PublisherPopulation,
        domains: Iterable[str],
        *,
        crawl_day: int = 0,
        progress: ProgressCallback | None = None,
        sink: DetectionSinkLike | None = None,
    ) -> CrawlResult:
        """Crawl a subset of a population selected by domain name."""
        publishers = [population.by_domain(domain) for domain in domains]
        return self.crawl(publishers, crawl_day=crawl_day, progress=progress, sink=sink)
