"""Longitudinal crawl scheduling.

The paper's measurement has two phases: one full pass over the 35k-site list
to find HB-enabled sites, then a daily re-crawl of those ~5k sites for 34
days.  The scheduler below orchestrates both phases and accumulates the
resulting detections into one longitudinal dataset.

The scheduler drives anything with the crawl interface — the classic
:class:`~repro.crawler.crawler.Crawler` facade or a
:class:`~repro.crawler.engine.CrawlEngine` directly — so parallel sharded
crawls (``CrawlConfig(workers=8, backend="process")``) drop in without
scheduler changes.  An optional ``sink`` streams every detection (discovery
pass first, then each crawl day) to storage as it is produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence, Union

from repro.crawler.crawler import Crawler, CrawlResult
from repro.detector.records import SiteDetection
from repro.ecosystem.publishers import PublisherPopulation
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crawler.checkpoint import CrawlCheckpointer
    from repro.crawler.engine import CrawlEngine, DetectionSinkLike

__all__ = ["LongitudinalCrawl", "LongitudinalScheduler"]


@dataclass
class LongitudinalCrawl:
    """The accumulated output of the discovery pass plus the daily re-crawls."""

    discovery: CrawlResult
    daily_results: list[CrawlResult] = field(default_factory=list)

    @property
    def n_days(self) -> int:
        return len(self.daily_results)

    @property
    def degraded(self) -> bool:
        """True when any phase completed with quarantined shards."""
        return self.discovery.degraded or any(r.degraded for r in self.daily_results)

    @property
    def all_detections(self) -> list[SiteDetection]:
        """Every detection, discovery pass included, in crawl order."""
        detections = list(self.discovery.detections)
        for daily in self.daily_results:
            detections.extend(daily.detections)
        return detections

    @property
    def hb_detections(self) -> list[SiteDetection]:
        return [d for d in self.all_detections if d.hb_detected]

    @property
    def pages_visited(self) -> int:
        return self.discovery.pages_visited + sum(r.pages_visited for r in self.daily_results)


class LongitudinalScheduler:
    """Runs the discovery pass and then the daily re-crawls."""

    def __init__(
        self,
        crawler: Union[Crawler, "CrawlEngine"],
        *,
        recrawl_days: int = 34,
    ) -> None:
        if recrawl_days < 0:
            raise ConfigurationError("the number of re-crawl days cannot be negative")
        self.crawler = crawler
        self.recrawl_days = recrawl_days

    def run(
        self,
        population: PublisherPopulation,
        *,
        domains: Sequence[str] | None = None,
        sink: "DetectionSinkLike | None" = None,
        checkpoint: "CrawlCheckpointer | None" = None,
    ) -> LongitudinalCrawl:
        """Execute the full two-phase measurement.

        ``domains`` restricts the discovery pass (useful for scaled-down test
        runs); by default the whole population is crawled.  ``sink`` receives
        every detection in crawl order as the campaign progresses.

        ``checkpoint`` threads a :class:`CrawlCheckpointer` through every
        phase (the discovery pass is phase ``crawl_day=0``, each re-crawl is
        its own phase), making the whole campaign resumable: phases the
        checkpoint saw complete are recovered from the sink file instead of
        re-crawled — the discovery result, and therefore the HB-site list the
        daily plans derive from, is reconstructed deterministically — and the
        interrupted phase restarts from its last recorded shard boundary.

        A phase that completes *degraded* (supervision quarantined shards,
        see :attr:`CrawlResult.quarantined_shards`) ends the campaign at that
        phase: a degraded discovery would derive the wrong HB-site list for
        every later day, and a degraded day would leave a gap mid-stream.
        The quarantine is recorded in the checkpoint, so a resume re-crawls
        the missing shards and continues the remaining days byte-identically.
        """
        targets = list(domains) if domains is not None else list(population.domains)
        discovery = self.crawler.crawl_domains(
            population, targets, crawl_day=0, sink=sink, checkpoint=checkpoint
        )
        longitudinal = LongitudinalCrawl(discovery=discovery)
        if discovery.degraded:
            return longitudinal

        hb_domains = discovery.hb_domains
        for day in range(1, self.recrawl_days + 1):
            daily = self.crawler.crawl_domains(
                population, hb_domains, crawl_day=day, sink=sink, checkpoint=checkpoint
            )
            longitudinal.daily_results.append(daily)
            if daily.degraded:
                break
        return longitudinal
