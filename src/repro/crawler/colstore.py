"""Typed binary columnar detection store.

JSONL (:mod:`repro.crawler.storage`) stays the reference format: it is
human-greppable and byte-stable.  At the million-site north star, though,
``json.dumps`` on every detection and an O(file) text re-parse on every
``analyze`` dominate wall-clock.  This module adds a second backend behind
the exact same seams — ``ColumnarDetectionSink`` mirrors ``DetectionSink``,
``ColumnarStorage`` mirrors ``CrawlStorage``, and ``ColumnarDataset`` *is* a
``CrawlDataset`` — that stores detections as typed numpy columns:

* fixed-width numeric columns (``<i8`` ranks, ``<f8`` latencies, presence
  bytes for nullable fields — no NaN sentinels, so floats round-trip to the
  reference JSONL bit-exactly);
* dictionary-encoded strings (domains, partners, bidder codes, slot codes,
  sizes, channels) with file-global ids carried as per-chunk deltas in
  first-occurrence order, which keeps encoding deterministic and resumed
  files byte-identical;
* offset-indexed variable-length lists (partners, latencies, channels,
  auctions, bids) as chunk-local cumulative end counters.

The file is a sequence of self-describing chunks — one per sink flush, and
the engine flushes at every shard boundary, so chunk boundaries land exactly
on the offsets the checkpointer records — followed by an optional footer
index written on close.  ``ColumnarTable`` mmaps the file and serves whole
columns as zero-copy numpy views; ``ColumnarDataset`` computes ``summary()``
(and therefore ``table1``) vectorised over those views without materialising
a single ``SiteDetection``, so cold-open on a saved campaign is milliseconds.

Layout (all integers little-endian, every region padded to 8 bytes)::

    file    := magic(8) chunk* footer?
    chunk   := "HBCK" counts(22 x u64) pad(4) dict-deltas columns
    footer  := "HBFO" n_chunks(u4) entry(offset u64 + counts)*
               footer_start(u64) "HBCOLEND"

A torn write can only truncate the tail, so readers see a valid prefix of
complete chunks; ``recover_to`` truncates to a chunk boundary exactly like
the JSONL tail recovery, and re-closing after an append rewrites a footer
identical to the one a clean run would have produced.
"""

from __future__ import annotations

import mmap
import struct
from collections.abc import Iterable, Iterator
from pathlib import Path

import numpy as np

from repro.analysis.dataset import CrawlDataset
from repro.detector.records import ObservedAuction, ObservedBid, SiteDetection
from repro.errors import EmptyDatasetError, StorageError
from repro.models import HBFacet
from repro.crawler.storage import STORE_FORMATS, CrawlStorage, DetectionSink

__all__ = [
    "COLUMNAR_MAGIC",
    "ColumnarDataset",
    "ColumnarDetectionSink",
    "ColumnarStorage",
    "ColumnarTable",
    "sniff_format",
    "storage_for",
]

COLUMNAR_MAGIC = b"HBCOL1\r\n"
_MAGIC_LEN = len(COLUMNAR_MAGIC)
_CHUNK_MAGIC = b"HBCK"
_FOOTER_MAGIC = b"HBFO"
_TRAILER_MAGIC = b"HBCOLEND"

# Chunk header: magic + 22 u64 counts, padded to a multiple of 8.
_CHUNK_HEADER = struct.Struct("<4s22Q")
_CHUNK_HEADER_SIZE = (_CHUNK_HEADER.size + 7) & ~7
_CHUNK_HEADER_PAD = b"\x00" * (_CHUNK_HEADER_SIZE - _CHUNK_HEADER.size)
_FOOTER_HEAD = struct.Struct("<4sI")
_FOOTER_ENTRY = struct.Struct("<23Q")
_TRAILER = struct.Struct("<Q8s")

#: File-global string dictionaries, in the order their deltas appear in a chunk.
DICT_NAMES = ("domain", "library", "partner", "bidder", "slot", "size", "channel", "source")
_N_DICTS = len(DICT_NAMES)

# counts tuple: (n detections, n auctions, n bids, n partner entries,
# n latency entries, n channel entries, then (n_new, blob_len) per dict).
_COUNT_INDEX = {"n": 0, "na": 1, "nb": 2, "np": 3, "nl": 4, "nc": 5}

#: (column name, dtype, count key) — payload order after the dict deltas.
COLUMNS = (
    ("d_domain", "<u4", "n"),
    ("d_rank", "<i8", "n"),
    ("d_hb", "u1", "n"),
    ("d_facet", "i1", "n"),
    ("d_library", "<i4", "n"),
    ("d_total_latency", "<f8", "n"),
    ("d_has_total_latency", "u1", "n"),
    ("d_crawl_day", "<i8", "n"),
    ("d_page_load", "<f8", "n"),
    ("d_has_page_load", "u1", "n"),
    ("d_partners_end", "<u4", "n"),
    ("d_latencies_end", "<u4", "n"),
    ("d_channels_end", "<u4", "n"),
    ("d_auctions_end", "<u4", "n"),
    ("p_partner", "<u4", "np"),
    ("l_partner", "<u4", "nl"),
    ("l_latency", "<f8", "nl"),
    ("c_channel", "<u4", "nc"),
    ("a_slot", "<u4", "na"),
    ("a_size", "<i4", "na"),
    ("a_start", "<f8", "na"),
    ("a_end", "<f8", "na"),
    ("a_facet", "i1", "na"),
    ("a_bids_end", "<u4", "na"),
    ("b_partner", "<u4", "nb"),
    ("b_bidder", "<u4", "nb"),
    ("b_slot", "<u4", "nb"),
    ("b_cpm", "<f8", "nb"),
    ("b_has_cpm", "u1", "nb"),
    ("b_size", "<i4", "nb"),
    ("b_latency", "<f8", "nb"),
    ("b_has_latency", "u1", "nb"),
    ("b_late", "u1", "nb"),
    ("b_won", "u1", "nb"),
    ("b_source", "<u4", "nb"),
)
_ITEMSIZE = {name: np.dtype(dtype).itemsize for name, dtype, _ in COLUMNS}
_DTYPE = {name: dtype for name, dtype, _ in COLUMNS}

# End-counter columns and the count key of the flat array they index into.
_END_TARGET = {
    "d_partners_end": "np",
    "d_latencies_end": "nl",
    "d_channels_end": "nc",
    "d_auctions_end": "na",
    "a_bids_end": "nb",
}

_FACETS = tuple(HBFacet)
_FACET_INDEX = {facet: code for code, facet in enumerate(_FACETS)}

#: Suffixes that select the columnar format for files that don't exist yet.
COLUMNAR_SUFFIXES = frozenset({".hbc", ".columnar"})


def _pad8(n: int) -> int:
    return (n + 7) & ~7


def _layout(counts: tuple[int, ...]) -> tuple[dict[str, tuple[int, int]], int]:
    """Byte layout of a chunk payload for the given counts.

    Returns ``({region: (offset, count)}, payload_size)`` — dict blob regions
    report a byte length instead of an element count.
    """
    entries: dict[str, tuple[int, int]] = {}
    pos = 0
    for i, dname in enumerate(DICT_NAMES):
        n_new = counts[6 + 2 * i]
        blob_len = counts[7 + 2 * i]
        entries[dname + ".offsets"] = (pos, n_new)
        pos += _pad8(4 * n_new)
        entries[dname + ".blob"] = (pos, blob_len)
        pos += _pad8(blob_len)
    for name, _dtype, key in COLUMNS:
        count = counts[_COUNT_INDEX[key]]
        entries[name] = (pos, count)
        pos += _pad8(count * _ITEMSIZE[name])
    return entries, pos


def _payload_size(counts: tuple[int, ...]) -> int:
    return _layout(counts)[1]


def _unpack_header(header: bytes) -> tuple[int, ...]:
    magic, *counts = _CHUNK_HEADER.unpack(header[: _CHUNK_HEADER.size])
    if magic != _CHUNK_MAGIC:
        raise StorageError("bad chunk magic")
    return tuple(counts)


def _encode_chunk(
    records: list[SiteDetection], dicts: list[dict[str, int]]
) -> tuple[bytes, tuple[int, ...], list[list[str]]]:
    """Encode one flush's worth of detections as a complete chunk.

    ``dicts`` are the file-global string tables; new strings are appended to
    them (in first-occurrence order) and also returned so a failed write can
    roll them back.
    """
    domain_d, library_d, partner_d, bidder_d, slot_d, size_d, channel_d, source_d = dicts
    added: list[list[str]] = [[] for _ in range(_N_DICTS)]

    def intern(table: dict[str, int], news: list[str], key: str) -> int:
        idx = table.get(key)
        if idx is None:
            idx = len(table)
            table[key] = idx
            news.append(key)
        return idx

    data: dict[str, list] = {name: [] for name, _, _ in COLUMNS}
    d = data  # local alias for the hot loop
    for det in records:
        d["d_domain"].append(intern(domain_d, added[0], det.domain))
        d["d_rank"].append(det.rank)
        d["d_hb"].append(1 if det.hb_detected else 0)
        facet = det.facet
        d["d_facet"].append(_FACET_INDEX[facet] if facet is not None else -1)
        library = det.library
        d["d_library"].append(intern(library_d, added[1], library) if library is not None else -1)
        total = det.total_latency_ms
        d["d_total_latency"].append(0.0 if total is None else total)
        d["d_has_total_latency"].append(0 if total is None else 1)
        d["d_crawl_day"].append(det.crawl_day)
        page_load = det.page_load_ms
        d["d_page_load"].append(0.0 if page_load is None else page_load)
        d["d_has_page_load"].append(0 if page_load is None else 1)
        for partner in det.partners:
            d["p_partner"].append(intern(partner_d, added[2], partner))
        d["d_partners_end"].append(len(d["p_partner"]))
        for partner, latency in det.partner_latencies_ms.items():
            d["l_partner"].append(intern(partner_d, added[2], partner))
            d["l_latency"].append(latency)
        d["d_latencies_end"].append(len(d["l_partner"]))
        for channel in det.detection_channels:
            d["c_channel"].append(intern(channel_d, added[6], channel))
        d["d_channels_end"].append(len(d["c_channel"]))
        for auction in det.auctions:
            d["a_slot"].append(intern(slot_d, added[4], auction.slot_code))
            size = auction.size
            d["a_size"].append(intern(size_d, added[5], size) if size is not None else -1)
            d["a_start"].append(auction.start_ms)
            d["a_end"].append(auction.end_ms)
            d["a_facet"].append(_FACET_INDEX[auction.facet])
            for bid in auction.bids:
                d["b_partner"].append(intern(partner_d, added[2], bid.partner))
                d["b_bidder"].append(intern(bidder_d, added[3], bid.bidder_code))
                d["b_slot"].append(intern(slot_d, added[4], bid.slot_code))
                cpm = bid.cpm
                d["b_cpm"].append(0.0 if cpm is None else cpm)
                d["b_has_cpm"].append(0 if cpm is None else 1)
                size = bid.size
                d["b_size"].append(intern(size_d, added[5], size) if size is not None else -1)
                latency = bid.latency_ms
                d["b_latency"].append(0.0 if latency is None else latency)
                d["b_has_latency"].append(0 if latency is None else 1)
                d["b_late"].append(1 if bid.late else 0)
                d["b_won"].append(1 if bid.won else 0)
                d["b_source"].append(intern(source_d, added[7], bid.source))
            d["a_bids_end"].append(len(d["b_partner"]))
        d["d_auctions_end"].append(len(d["a_slot"]))

    dict_regions: list[tuple[list[int], bytes]] = []
    dict_counts: list[int] = []
    for news in added:
        encoded = [s.encode("utf-8") for s in news]
        ends: list[int] = []
        total_len = 0
        for blob in encoded:
            total_len += len(blob)
            ends.append(total_len)
        joined = b"".join(encoded)
        dict_regions.append((ends, joined))
        dict_counts.extend((len(news), len(joined)))

    counts = (
        len(records),
        len(d["a_slot"]),
        len(d["b_partner"]),
        len(d["p_partner"]),
        len(d["l_partner"]),
        len(d["c_channel"]),
        *dict_counts,
    )
    layout, size = _layout(counts)
    payload = bytearray(size)
    for dname, (ends, joined) in zip(DICT_NAMES, dict_regions):
        if ends:
            off, count = layout[dname + ".offsets"]
            payload[off : off + 4 * count] = np.asarray(ends, dtype="<u4").tobytes()
            off, blob_len = layout[dname + ".blob"]
            payload[off : off + blob_len] = joined
    for name, dtype, _key in COLUMNS:
        off, count = layout[name]
        if count:
            payload[off : off + count * _ITEMSIZE[name]] = np.asarray(data[name], dtype=dtype).tobytes()

    header = _CHUNK_HEADER.pack(_CHUNK_MAGIC, *counts) + _CHUNK_HEADER_PAD
    return header + bytes(payload), counts, added


def _chunk_columns(payload, counts: tuple[int, ...]) -> dict[str, np.ndarray]:
    """Numpy views over every column of one chunk payload (bytes or mmap slice)."""
    layout, _ = _layout(counts)
    cols: dict[str, np.ndarray] = {}
    for name, dtype, key in COLUMNS:
        off, count = layout[name]
        cols[name] = np.frombuffer(payload, dtype=dtype, count=count, offset=off)
    return cols


def _apply_dict_deltas(payload, counts: tuple[int, ...], names: list[list[str]]) -> None:
    """Append this chunk's new dictionary strings to the global name tables."""
    layout, _ = _layout(counts)
    for i, dname in enumerate(DICT_NAMES):
        n_new = counts[6 + 2 * i]
        if not n_new:
            continue
        off, count = layout[dname + ".offsets"]
        ends = np.frombuffer(payload, dtype="<u4", count=count, offset=off)
        off, blob_len = layout[dname + ".blob"]
        blob = bytes(memoryview(payload)[off : off + blob_len])
        bucket = names[i]
        start = 0
        for end in ends.tolist():
            bucket.append(blob[start:end].decode("utf-8"))
            start = end
    return None


def _materialize_chunk(
    cols: dict[str, np.ndarray], counts: tuple[int, ...], names: list[list[str]]
) -> list[SiteDetection]:
    """Rebuild exact ``SiteDetection`` records from one chunk's columns."""
    domain_n, library_n, partner_n, bidder_n, slot_n, size_n, channel_n, source_n = names
    # .tolist() converts numpy scalars to exact Python natives in one pass.
    c = {name: cols[name].tolist() for name, _, _ in COLUMNS}
    out: list[SiteDetection] = []
    p_start = l_start = ch_start = a_start = b_start = 0
    for i in range(counts[0]):
        p_end = c["d_partners_end"][i]
        partners = tuple(partner_n[pid] for pid in c["p_partner"][p_start:p_end])
        p_start = p_end
        l_end = c["d_latencies_end"][i]
        latencies = {
            partner_n[pid]: latency
            for pid, latency in zip(c["l_partner"][l_start:l_end], c["l_latency"][l_start:l_end])
        }
        l_start = l_end
        ch_end = c["d_channels_end"][i]
        channels = tuple(channel_n[cid] for cid in c["c_channel"][ch_start:ch_end])
        ch_start = ch_end
        a_end = c["d_auctions_end"][i]
        auctions = []
        for j in range(a_start, a_end):
            b_end = c["a_bids_end"][j]
            bids = []
            for k in range(b_start, b_end):
                bids.append(
                    ObservedBid(
                        partner=partner_n[c["b_partner"][k]],
                        bidder_code=bidder_n[c["b_bidder"][k]],
                        slot_code=slot_n[c["b_slot"][k]],
                        cpm=c["b_cpm"][k] if c["b_has_cpm"][k] else None,
                        size=size_n[c["b_size"][k]] if c["b_size"][k] >= 0 else None,
                        latency_ms=c["b_latency"][k] if c["b_has_latency"][k] else None,
                        late=bool(c["b_late"][k]),
                        won=bool(c["b_won"][k]),
                        source=source_n[c["b_source"][k]],
                    )
                )
            b_start = b_end
            auctions.append(
                ObservedAuction(
                    slot_code=slot_n[c["a_slot"][j]],
                    size=size_n[c["a_size"][j]] if c["a_size"][j] >= 0 else None,
                    start_ms=c["a_start"][j],
                    end_ms=c["a_end"][j],
                    facet=_FACETS[c["a_facet"][j]],
                    bids=tuple(bids),
                )
            )
        a_start = a_end
        facet_code = c["d_facet"][i]
        out.append(
            SiteDetection(
                domain=domain_n[c["d_domain"][i]],
                rank=c["d_rank"][i],
                hb_detected=bool(c["d_hb"][i]),
                facet=_FACETS[facet_code] if facet_code >= 0 else None,
                library=library_n[c["d_library"][i]] if c["d_library"][i] >= 0 else None,
                partners=partners,
                auctions=tuple(auctions),
                partner_latencies_ms=latencies,
                total_latency_ms=c["d_total_latency"][i] if c["d_has_total_latency"][i] else None,
                detection_channels=channels,
                crawl_day=c["d_crawl_day"][i],
                page_load_ms=c["d_page_load"][i] if c["d_has_page_load"][i] else None,
            )
        )
    return out


def _check_magic(path: Path, head: bytes) -> None:
    if head == COLUMNAR_MAGIC:
        return
    if head.startswith(b"HBCOL"):
        raise StorageError(
            f"{path} uses an unsupported columnar store version "
            f"(magic {head!r}, this build reads {COLUMNAR_MAGIC!r})"
        )
    raise StorageError(f"{path} is not a columnar detection store (magic {head!r})")


class _FileIndex:
    """Result of walking a columnar file's chunk headers."""

    __slots__ = ("chunks", "data_end", "size", "tail", "footer_start")

    def __init__(self, chunks, data_end, size, tail, footer_start):
        self.chunks: list[tuple[int, tuple[int, ...]]] = chunks
        self.data_end = data_end  # end of the last complete chunk (footer excluded)
        self.size = size
        self.tail = tail  # "clean" | "footer" | "partial"
        self.footer_start = footer_start


def _complete_footer_at(handle, size: int, pos: int) -> bool:
    """True if a complete, self-consistent footer occupies [pos, size)."""
    if size - pos < _FOOTER_HEAD.size + _TRAILER.size:
        return False
    handle.seek(size - _TRAILER.size)
    footer_start, magic = _TRAILER.unpack(handle.read(_TRAILER.size))
    if magic != _TRAILER_MAGIC or footer_start != pos:
        return False
    handle.seek(pos)
    fmagic, n_chunks = _FOOTER_HEAD.unpack(handle.read(_FOOTER_HEAD.size))
    if fmagic != _FOOTER_MAGIC:
        return False
    return pos + _FOOTER_HEAD.size + n_chunks * _FOOTER_ENTRY.size + _TRAILER.size == size


def _index_file(path: Path) -> _FileIndex:
    """Walk chunk headers; tolerate a torn tail, reject mid-file garbage."""
    try:
        handle = path.open("rb")
    except OSError as exc:
        raise StorageError(f"could not read {path}: {exc}") from exc
    with handle:
        handle.seek(0, 2)
        size = handle.tell()
        if size == 0:
            return _FileIndex([], 0, 0, "clean", None)
        handle.seek(0)
        head = handle.read(_MAGIC_LEN)
        if len(head) < _MAGIC_LEN:
            return _FileIndex([], 0, size, "partial", None)
        _check_magic(path, head)
        chunks: list[tuple[int, tuple[int, ...]]] = []
        pos = _MAGIC_LEN
        tail = "clean"
        footer_start = None
        while pos < size:
            remaining = size - pos
            handle.seek(pos)
            peek = handle.read(min(4, remaining))
            if peek == _FOOTER_MAGIC:
                if _complete_footer_at(handle, size, pos):
                    tail, footer_start = "footer", pos
                else:
                    tail = "partial"
                break
            if len(peek) < 4 or not _CHUNK_MAGIC.startswith(peek[: len(peek)]):
                if peek[: len(peek)] and not _CHUNK_MAGIC.startswith(peek) and not _FOOTER_MAGIC.startswith(peek):
                    raise StorageError(f"corrupt columnar store {path}: unrecognised bytes at offset {pos}")
                tail = "partial"
                break
            if remaining < _CHUNK_HEADER_SIZE:
                tail = "partial"
                break
            handle.seek(pos)
            counts = _unpack_header(handle.read(_CHUNK_HEADER_SIZE))
            total = _CHUNK_HEADER_SIZE + _payload_size(counts)
            if remaining < total:
                tail = "partial"
                break
            chunks.append((pos, counts))
            pos += total
        data_end = chunks[-1][0] + _CHUNK_HEADER_SIZE + _payload_size(chunks[-1][1]) if chunks else _MAGIC_LEN
        return _FileIndex(chunks, data_end, size, tail, footer_start)


def _load_names(handle, chunks: Iterable[tuple[int, tuple[int, ...]]]) -> list[list[str]]:
    """Rebuild the global string tables by reading only the dict-delta regions."""
    names: list[list[str]] = [[] for _ in range(_N_DICTS)]
    for offset, counts in chunks:
        layout, _ = _layout(counts)
        base = offset + _CHUNK_HEADER_SIZE
        for i, dname in enumerate(DICT_NAMES):
            n_new = counts[6 + 2 * i]
            if not n_new:
                continue
            off, count = layout[dname + ".offsets"]
            handle.seek(base + off)
            ends = np.frombuffer(handle.read(4 * count), dtype="<u4")
            off, blob_len = layout[dname + ".blob"]
            handle.seek(base + off)
            blob = handle.read(blob_len)
            bucket = names[i]
            start = 0
            for end in ends.tolist():
                bucket.append(blob[start:end].decode("utf-8"))
                start = end
    return names


class ColumnarDetectionSink:
    """Buffered columnar sink with the exact ``DetectionSink`` contract.

    Detections are buffered as objects and encoded one chunk per flush;
    ``offset`` reports flushed data bytes (footer excluded), so checkpoint
    offsets recorded against this sink are chunk boundaries by construction.
    ``close()`` appends the footer index; reopening in append mode strips it
    and a later close rewrites an identical one.
    """

    DEFAULT_FLUSH_EVERY = DetectionSink.DEFAULT_FLUSH_EVERY

    def __init__(self, path: str | Path, *, append: bool = False, flush_every: int = DEFAULT_FLUSH_EVERY) -> None:
        if flush_every < 1:
            raise StorageError(f"flush_every must be a positive integer, got {flush_every}")
        self.path = Path(path)
        self.append = append
        self.flush_every = flush_every
        self.count = 0
        self.flushes = 0
        self._buffer: list[SiteDetection] = []
        self._handle = None
        self._closed = False
        self._offset: int | None = None
        self._dicts: list[dict[str, int]] | None = None
        self._chunks: list[tuple[int, tuple[int, ...]]] | None = None

    @property
    def offset(self) -> int:
        """Bytes of flushed chunk data (header included, footer excluded)."""
        self._prepare()
        return self._offset  # type: ignore[return-value]

    def _prepare(self) -> None:
        if self._dicts is not None:
            return
        if self.append and self.path.exists() and self.path.stat().st_size > 0:
            index = _index_file(self.path)
            if index.tail == "partial":
                raise StorageError(
                    f"cannot append to {self.path}: the file ends in a torn write; "
                    f"recover it to a checkpointed offset first"
                )
            with self.path.open("rb") as handle:
                names = _load_names(handle, index.chunks)
            self._dicts = [{name: idx for idx, name in enumerate(bucket)} for bucket in names]
            self._chunks = list(index.chunks)
            self._offset = index.data_end
        else:
            self._dicts = [{} for _ in range(_N_DICTS)]
            self._chunks = []
            self._offset = 0

    def _ensure_open(self):
        if self._closed:
            raise StorageError(f"detection sink for {self.path} is closed")
        if self._handle is None:
            self._prepare()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                if self.append and self.path.exists():
                    handle = self.path.open("r+b")
                    handle.truncate(self._offset)  # strip any footer / torn-free tail
                    handle.seek(self._offset)  # type: ignore[arg-type]
                else:
                    handle = self.path.open("wb")
            except OSError as exc:
                raise StorageError(f"could not open detection sink {self.path}: {exc}") from exc
            self._handle = handle
        return self._handle

    def write(self, detection: SiteDetection) -> None:
        if self._closed:
            raise StorageError(f"detection sink for {self.path} is closed")
        self._buffer.append(detection)
        self.count += 1
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def write_many(self, detections: Iterable[SiteDetection]) -> int:
        before = self.count
        for detection in detections:
            self.write(detection)
        return self.count - before

    def flush(self) -> None:
        if not self._buffer:
            return
        handle = self._ensure_open()
        chunk, counts, added = _encode_chunk(self._buffer, self._dicts)  # type: ignore[arg-type]
        base = self._offset  # type: ignore[assignment]
        prefix = COLUMNAR_MAGIC if base == 0 else b""
        try:
            handle.write(prefix + chunk)
            handle.flush()
        except OSError as exc:
            # Keep the buffer and un-intern this chunk's new strings so a
            # retried flush re-encodes an identical chunk.
            for table, news in zip(self._dicts, added):  # type: ignore[arg-type]
                for name in news:
                    del table[name]
            raise StorageError(f"could not write detections to {self.path}: {exc}") from exc
        self._chunks.append((base + len(prefix), counts))  # type: ignore[union-attr]
        self._offset = base + len(prefix) + len(chunk)
        self._buffer.clear()
        self.flushes += 1

    def _write_footer(self) -> None:
        handle = self._handle
        base = self._offset or 0
        prefix = COLUMNAR_MAGIC if base == 0 else b""
        footer_start = base + len(prefix)
        chunks = self._chunks or []
        blob = (
            prefix
            + _FOOTER_HEAD.pack(_FOOTER_MAGIC, len(chunks))
            + b"".join(_FOOTER_ENTRY.pack(offset, *counts) for offset, counts in chunks)
            + _TRAILER.pack(footer_start, _TRAILER_MAGIC)
        )
        try:
            handle.write(blob)
            handle.flush()
        except OSError as exc:
            raise StorageError(f"could not finalise detection sink {self.path}: {exc}") from exc

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.flush()
            if self._handle is not None:
                self._write_footer()
        finally:
            self._closed = True
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> ColumnarDetectionSink:
        self._ensure_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            self.close()
        except StorageError:
            if exc_type is None:
                raise
        return False


class ColumnarStorage:
    """``CrawlStorage`` API over the columnar file format."""

    format = "columnar"
    #: Chunk size used by bulk ``save``/``append`` — few large chunks, so a
    #: converted file mmaps into near-contiguous columns.
    SAVE_CHUNK_RECORDS = 8192

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        # Tailing state for read_new: dictionary contents up to _tail_offset.
        self._tail_offset = 0
        self._tail_names: list[list[str]] = [[] for _ in range(_N_DICTS)]

    def open_sink(
        self, *, append: bool = False, flush_every: int = ColumnarDetectionSink.DEFAULT_FLUSH_EVERY
    ) -> ColumnarDetectionSink:
        return ColumnarDetectionSink(self.path, append=append, flush_every=flush_every)

    def save(self, detections: Iterable[SiteDetection]) -> int:
        self._tail_offset = 0
        self._tail_names = [[] for _ in range(_N_DICTS)]
        with self.open_sink(append=False, flush_every=self.SAVE_CHUNK_RECORDS) as sink:
            written = sink.write_many(detections)
        return written

    def append(self, detections: Iterable[SiteDetection]) -> int:
        with self.open_sink(append=True, flush_every=self.SAVE_CHUNK_RECORDS) as sink:
            written = sink.write_many(detections)
        return written

    def load(self) -> list[SiteDetection]:
        return list(self.iter_load())

    def iter_load(self) -> Iterator[SiteDetection]:
        if not self.path.exists():
            raise StorageError(f"crawl dataset not found: {self.path}")
        index = _index_file(self.path)
        if index.tail == "partial":
            raise StorageError(
                f"truncated columnar store {self.path}: the file ends mid-write; "
                f"recover it to a checkpointed offset first"
            )
        names: list[list[str]] = [[] for _ in range(_N_DICTS)]
        with self.path.open("rb") as handle:
            for offset, counts in index.chunks:
                handle.seek(offset + _CHUNK_HEADER_SIZE)
                payload = handle.read(_payload_size(counts))
                _apply_dict_deltas(payload, counts, names)
                yield from _materialize_chunk(_chunk_columns(payload, counts), counts, names)

    def size(self) -> int:
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0

    def read_new(self, offset: int = 0) -> tuple[list[SiteDetection], int]:
        """Detections in complete chunks past ``offset``, plus the new offset.

        A trailing half-written chunk (or half-written footer) is left for the
        next call; a complete footer is consumed by advancing the offset to
        end-of-file so pollers observe the store as drained after close.
        """
        if offset < 0:
            raise StorageError(f"read offset cannot be negative, got {offset}")
        if not self.path.exists():
            return [], offset
        size = self.path.stat().st_size
        if size < offset:
            raise StorageError(
                f"detection store {self.path} shrank below read offset {offset} "
                f"(size is now {size}); it was truncated or replaced mid-read"
            )
        if offset == 0:
            names: list[list[str]] = [[] for _ in range(_N_DICTS)]
            pos = 0
        elif offset == self._tail_offset:
            names = self._tail_names
            pos = offset
        else:
            names = self._names_up_to(offset)
            pos = offset
        detections: list[SiteDetection] = []
        try:
            handle = self.path.open("rb")
        except OSError as exc:
            raise StorageError(f"could not read {self.path}: {exc}") from exc
        with handle:
            if pos == 0:
                if size < _MAGIC_LEN:
                    return [], 0
                head = handle.read(_MAGIC_LEN)
                _check_magic(self.path, head)
                pos = _MAGIC_LEN
            while pos < size:
                remaining = size - pos
                handle.seek(pos)
                peek = handle.read(min(4, remaining))
                if peek == _FOOTER_MAGIC:
                    if _complete_footer_at(handle, size, pos):
                        pos = size
                    break
                if len(peek) < 4:
                    break
                if peek != _CHUNK_MAGIC:
                    raise StorageError(f"corrupt columnar store {self.path}: unrecognised bytes at offset {pos}")
                if remaining < _CHUNK_HEADER_SIZE:
                    break
                handle.seek(pos)
                counts = _unpack_header(handle.read(_CHUNK_HEADER_SIZE))
                payload_size = _payload_size(counts)
                if remaining < _CHUNK_HEADER_SIZE + payload_size:
                    break
                payload = handle.read(payload_size)
                _apply_dict_deltas(payload, counts, names)
                detections.extend(_materialize_chunk(_chunk_columns(payload, counts), counts, names))
                pos += _CHUNK_HEADER_SIZE + payload_size
        self._tail_offset = pos
        self._tail_names = names
        return detections, pos

    def _names_up_to(self, offset: int) -> list[list[str]]:
        """Rebuild dictionary state for a reader joining at ``offset``."""
        index = _index_file(self.path)
        kept = []
        pos = _MAGIC_LEN
        for chunk_offset, counts in index.chunks:
            if chunk_offset + _CHUNK_HEADER_SIZE + _payload_size(counts) > offset:
                break
            kept.append((chunk_offset, counts))
            pos = chunk_offset + _CHUNK_HEADER_SIZE + _payload_size(counts)
        if pos != offset and not (index.tail == "footer" and offset == index.size):
            raise StorageError(
                f"read offset {offset} of {self.path} is not a chunk boundary; "
                f"nearest boundary is {pos}"
            )
        with self.path.open("rb") as handle:
            return _load_names(handle, kept)

    def recover_to(self, offset: int) -> list[SiteDetection]:
        """Validate and truncate the store to a checkpointed chunk boundary.

        Returns the kept detections (mirroring the JSONL contract) and drops
        everything past ``offset`` — post-checkpoint chunks, a torn tail, or
        a footer, all of which the resumed sink will rewrite.
        """
        if offset < 0:
            raise StorageError(f"cannot recover {self.path} to negative offset {offset}")
        if offset == 0:
            if self.path.exists():
                self._truncate(0)
            self._tail_offset = 0
            self._tail_names = [[] for _ in range(_N_DICTS)]
            return []
        if not self.path.exists():
            raise StorageError(
                f"cannot recover {self.path} to offset {offset}: the file does not exist"
            )
        size = self.path.stat().st_size
        if size < offset:
            raise StorageError(
                f"cannot recover {self.path} to offset {offset}: the file holds only {size} bytes"
            )
        if offset < _MAGIC_LEN:
            raise StorageError(
                f"cannot recover {self.path} to offset {offset}: not a chunk boundary"
            )
        detections: list[SiteDetection] = []
        names: list[list[str]] = [[] for _ in range(_N_DICTS)]
        with self.path.open("rb") as handle:
            head = handle.read(_MAGIC_LEN)
            if len(head) < _MAGIC_LEN:
                raise StorageError(f"cannot recover {self.path}: the file is too short to hold its magic")
            _check_magic(self.path, head)
            pos = _MAGIC_LEN
            while pos < offset:
                handle.seek(pos)
                header = handle.read(_CHUNK_HEADER_SIZE)
                if len(header) < _CHUNK_HEADER_SIZE or header[:4] != _CHUNK_MAGIC:
                    raise StorageError(
                        f"cannot recover {self.path} to offset {offset}: corrupt chunk header at {pos}"
                    )
                counts = _unpack_header(header)
                payload_size = _payload_size(counts)
                if pos + _CHUNK_HEADER_SIZE + payload_size > offset:
                    raise StorageError(
                        f"cannot recover {self.path} to offset {offset}: not a chunk boundary "
                        f"(a chunk starting at {pos} crosses it)"
                    )
                payload = handle.read(payload_size)
                if len(payload) < payload_size:
                    raise StorageError(
                        f"cannot recover {self.path} to offset {offset}: chunk at {pos} is truncated"
                    )
                _apply_dict_deltas(payload, counts, names)
                detections.extend(_materialize_chunk(_chunk_columns(payload, counts), counts, names))
                pos += _CHUNK_HEADER_SIZE + payload_size
        if size > offset:
            self._truncate(offset)
        self._tail_offset = offset
        self._tail_names = names
        return detections

    def _truncate(self, offset: int) -> None:
        try:
            with self.path.open("r+b") as handle:
                handle.truncate(offset)
        except OSError as exc:
            raise StorageError(f"could not truncate {self.path} to {offset} bytes: {exc}") from exc


class ColumnarTable:
    """Zero-copy reader: mmaps a columnar file and serves numpy column views.

    Uses the footer index when the file was cleanly closed (O(1) open);
    otherwise walks chunk headers, ignoring a torn tail, so a live or crashed
    file reads as its complete-chunk prefix.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise StorageError(f"crawl dataset not found: {self.path}")
        size = self.path.stat().st_size
        self._chunks: list[tuple[int, tuple[int, ...]]] = []
        self._mm: mmap.mmap | None = None
        self._columns: dict[str, np.ndarray] = {}
        self._ends: dict[str, np.ndarray] = {}
        self._layouts: dict[int, dict[str, tuple[int, int]]] = {}
        self._names: list[list[str]] | None = None
        self.n_records = 0
        if size == 0:
            return
        if size < _MAGIC_LEN:
            raise StorageError(f"{self.path} is too short to be a columnar detection store")
        with self.path.open("rb") as handle:
            _check_magic(self.path, handle.read(_MAGIC_LEN))
            self._chunks = self._chunks_from_footer(handle, size)
            if self._chunks is None:
                self._chunks = _index_file(self.path).chunks
            self._mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        self.n_records = sum(counts[0] for _, counts in self._chunks)

    def _chunks_from_footer(self, handle, size: int):
        """Parse the footer index; return None to fall back to a header walk."""
        if size < _MAGIC_LEN + _FOOTER_HEAD.size + _TRAILER.size:
            return None
        handle.seek(size - _TRAILER.size)
        footer_start, magic = _TRAILER.unpack(handle.read(_TRAILER.size))
        if magic != _TRAILER_MAGIC or not (_MAGIC_LEN <= footer_start <= size - _FOOTER_HEAD.size - _TRAILER.size):
            return None
        handle.seek(footer_start)
        fmagic, n_chunks = _FOOTER_HEAD.unpack(handle.read(_FOOTER_HEAD.size))
        if fmagic != _FOOTER_MAGIC:
            return None
        if footer_start + _FOOTER_HEAD.size + n_chunks * _FOOTER_ENTRY.size + _TRAILER.size != size:
            return None
        raw = handle.read(n_chunks * _FOOTER_ENTRY.size)
        chunks: list[tuple[int, tuple[int, ...]]] = []
        expected = _MAGIC_LEN
        for i in range(n_chunks):
            entry = _FOOTER_ENTRY.unpack_from(raw, i * _FOOTER_ENTRY.size)
            offset, counts = entry[0], entry[1:]
            if offset != expected:
                raise StorageError(f"corrupt footer index in {self.path}: chunk {i} offset mismatch")
            chunks.append((offset, counts))
            expected = offset + _CHUNK_HEADER_SIZE + _payload_size(counts)
        if expected != footer_start:
            raise StorageError(f"corrupt footer index in {self.path}: chunk sizes do not reach the footer")
        return chunks

    def _chunk_layout(self, chunk: tuple[int, tuple[int, ...]]) -> dict[str, tuple[int, int]]:
        # Memoised per chunk: reading ~10 columns over a few hundred chunks
        # would otherwise recompute the full 51-region layout thousands of
        # times, dominating the cold open this format exists to make cheap.
        offset, counts = chunk
        layout = self._layouts.get(offset)
        if layout is None:
            layout = _layout(counts)[0]
            self._layouts[offset] = layout
        return layout

    def _chunk_view(self, chunk: tuple[int, tuple[int, ...]], name: str) -> np.ndarray:
        offset, counts = chunk
        off, count = self._chunk_layout(chunk)[name]
        return np.frombuffer(
            self._mm, dtype=_DTYPE[name], count=count, offset=offset + _CHUNK_HEADER_SIZE + off
        )

    def column(self, name: str) -> np.ndarray:
        """The named column concatenated across chunks (a view if one chunk)."""
        arr = self._columns.get(name)
        if arr is None:
            if not self._chunks:
                arr = np.empty(0, dtype=_DTYPE[name])
            elif len(self._chunks) == 1:
                arr = self._chunk_view(self._chunks[0], name)
            else:
                arr = np.concatenate([self._chunk_view(chunk, name) for chunk in self._chunks])
            self._columns[name] = arr
        return arr

    def ends(self, name: str) -> np.ndarray:
        """A chunk-local end-counter column rebased to global int64 offsets."""
        arr = self._ends.get(name)
        if arr is None:
            target = _COUNT_INDEX[_END_TARGET[name]]
            parts = []
            base = 0
            for chunk in self._chunks:
                parts.append(self._chunk_view(chunk, name).astype(np.int64) + base)
                base += chunk[1][target]
            arr = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            self._ends[name] = arr
        return arr

    def names(self) -> list[list[str]]:
        """Per-dictionary id → string tables, decoded lazily once."""
        if self._names is None:
            names: list[list[str]] = [[] for _ in range(_N_DICTS)]
            mv = memoryview(self._mm) if self._mm is not None else None
            for offset, counts in self._chunks:
                base = offset + _CHUNK_HEADER_SIZE
                payload = mv[base : base + _payload_size(counts)]
                _apply_dict_deltas(payload, counts, names)
            self._names = names
        return self._names

    def materialize(self) -> list[SiteDetection]:
        """Exact ``SiteDetection`` records, chunk by chunk."""
        names = self.names()
        out: list[SiteDetection] = []
        mv = memoryview(self._mm) if self._mm is not None else None
        for offset, counts in self._chunks:
            base = offset + _CHUNK_HEADER_SIZE
            payload = mv[base : base + _payload_size(counts)]
            out.extend(_materialize_chunk(_chunk_columns(payload, counts), counts, names))
        return out


class ColumnarDataset(CrawlDataset):
    """A ``CrawlDataset`` over an mmapped :class:`ColumnarTable`.

    ``summary()`` (and hence ``table1``) is computed vectorised over the raw
    column arrays without building any ``SiteDetection``; metrics that walk
    records trigger a one-time lazy materialisation, after which the dataset
    behaves exactly like its JSONL twin (same indices, same ``extend``).
    """

    def __init__(self, table: ColumnarTable, *, label: str = "crawl") -> None:
        # Set before super().__init__: the generated dataclass __init__
        # assigns self.detections (hitting our setter) before _lock exists.
        self._table = table
        self._records: list[SiteDetection] | None = None
        super().__init__(detections=[], label=label)

    @classmethod
    def open(cls, path: str | Path, *, label: str | None = None) -> ColumnarDataset:
        path = Path(path)
        return cls(ColumnarTable(path), label=label if label is not None else path.stem)

    @property  # type: ignore[override]
    def detections(self) -> list[SiteDetection]:
        records = self._records
        if records is None:
            with self._lock:
                if self._records is None:
                    self._records = self._table.materialize()
                records = self._records
        return records

    @detections.setter
    def detections(self, value) -> None:
        records = list(value)
        # The dataclass __init__ assigns an empty list; keep laziness then.
        if records or getattr(self, "_table", None) is None:
            self._records = records

    def __len__(self) -> int:
        records = self._records
        return len(records) if records is not None else self._table.n_records

    def _require_non_empty(self) -> None:
        if len(self) == 0:
            raise EmptyDatasetError("the crawl dataset is empty")

    def crawl_days(self) -> tuple[int, ...]:
        if self._records is not None:
            return super().crawl_days()
        return self._index(
            ("columnar", "crawl_days"),
            lambda: tuple(int(day) for day in np.unique(self._table.column("d_crawl_day"))),
        )

    def summary(self) -> dict:
        if self._records is not None:
            return super().summary()
        self._require_non_empty()
        return dict(self._index(("columnar", "summary"), self._columnar_summary))

    def _columnar_summary(self) -> dict:
        table = self._table
        domain = table.column("d_domain")
        hb_rows = np.flatnonzero(table.column("d_hb"))
        n_sites = int(np.unique(domain).size)
        uniq_hb, first_seen = np.unique(domain[hb_rows], return_index=True)
        n_hb = int(uniq_hb.size)
        auction_end = table.ends("d_auctions_end")
        auction_cum = np.concatenate(([0], auction_end))
        n_auctions = int((auction_cum[hb_rows + 1] - auction_cum[hb_rows]).sum())
        bid_cum = np.concatenate(([0], table.ends("a_bids_end")))
        n_bids = int((bid_cum[auction_cum[hb_rows + 1]] - bid_cum[auction_cum[hb_rows]]).sum())
        # Partners over each HB domain's first visit, matching hb_sites().
        first_rows = hb_rows[first_seen]
        partner_cum = np.concatenate(([0], table.ends("d_partners_end")))
        starts = partner_cum[first_rows]
        sizes = partner_cum[first_rows + 1] - starts
        total = int(sizes.sum())
        if total:
            shift = np.repeat(np.cumsum(sizes) - sizes, sizes)
            flat_idx = np.repeat(starts, sizes) + (np.arange(total) - shift)
            n_partners = int(np.unique(table.column("p_partner")[flat_idx]).size)
        else:
            n_partners = 0
        n_days = int(np.unique(table.column("d_crawl_day")).size)
        return {
            "websites_crawled": n_sites,
            "websites_with_hb": n_hb,
            "adoption_rate": n_hb / n_sites if n_sites else 0.0,
            "auctions_detected": n_auctions,
            "bids_detected": n_bids,
            "competing_demand_partners": n_partners,
            "crawl_days": n_days,
            "crawl_weeks": max(1, round(n_days / 7)) if n_days else 0,
            "page_visits": table.n_records,
        }


def sniff_format(path: str | Path) -> str:
    """Detect a detection store's format by magic bytes, or extension if empty.

    Raises :class:`StorageError` (a ``ReproError``) for files that are
    neither JSONL nor a columnar store, instead of letting a parser blow up
    later with a stack trace.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except OSError:
        size = 0
    if size:
        try:
            with path.open("rb") as handle:
                head = handle.read(_MAGIC_LEN)
        except OSError as exc:
            raise StorageError(f"could not read {path}: {exc}") from exc
        if head.startswith(b"HBCOL") or b"HBCOL".startswith(head):
            return "columnar"
        stripped = head.lstrip()
        if not stripped or stripped.startswith(b"{"):
            return "jsonl"
        raise StorageError(
            f"{path} is not a recognised detection store: expected JSON-Lines "
            f"(a '{{' record) or the columnar magic {COLUMNAR_MAGIC!r}, found {head!r}"
        )
    return "columnar" if path.suffix.lower() in COLUMNAR_SUFFIXES else "jsonl"


def storage_for(path: str | Path, format: str | None = None) -> CrawlStorage | ColumnarStorage:
    """Build the right storage backend for ``path``.

    With ``format=None`` the file is sniffed (falling back to the extension
    for files that don't exist yet, so tooling can create either kind).
    """
    fmt = format if format is not None else sniff_format(path)
    if fmt == "jsonl":
        return CrawlStorage(path)
    if fmt == "columnar":
        return ColumnarStorage(path)
    raise StorageError(f"unknown detection store format {fmt!r}; expected one of: {', '.join(STORE_FORMATS)}")
