"""Crash-safe checkpointing of sharded crawls.

The paper's measurement is a multi-week campaign; at production scale any
real crawl will be interrupted — a machine reboot, an OOM kill, a preempted
node.  This module makes a crawl resumable without giving up the engine's
byte-identity guarantee: a resumed crawl produces exactly the bytes an
uninterrupted run would have, for any backend, worker count or sink flush
interval.

How it works
------------
The engine already emits detections in canonical shard order and flushes the
sink at every shard boundary, so at each boundary the sink file is a prefix
of the final canonical byte stream.  A :class:`CrawlCheckpoint` snapshots
exactly that state — the campaign fingerprint, the per-phase shard plan hash,
the completed-shard set, per-phase crawl counters, and the sink byte offset —
and is written *atomically* (temp file + fsync + rename) so a crash can never
leave a half-written checkpoint.

On resume, :meth:`CrawlCheckpointer.resume` refuses to continue unless the
checkpoint's fingerprint matches the current configuration (same seed,
population, timeouts, campaign shape), truncates the sink's half-flushed tail
back to the recorded offset via :meth:`CrawlStorage.recover_to`, and re-parses
the kept prefix.  The engine then re-plans deterministically, verifies the
recorded plan hash and the recovered detections against the plan, skips the
completed shards, and merges old and new detections in canonical order.

What the fingerprint covers
---------------------------
Only knobs that change the produced bytes: the seed, the population, the
page-load timeout/dwell/restart parameters and the campaign shape.  The
worker count, execution backend and sink flush interval are deliberately
*excluded* — detections are byte-identical across all of them — so a crawl
interrupted on a laptop can resume on a 64-core box.  The one exception is
the phase that was mid-flight when the crawl died: its shard boundaries must
line up with the recorded completed-shard set, so resuming *that phase* with
a different worker count raises :class:`CheckpointError` (finished phases
and phases not yet started are free to re-plan).

The day horizon (``recrawl_days``) is *extensible* rather than frozen: a
finished campaign may resume with a larger horizon, appending net-new crawl
days to the same sink, because each day is its own phase and completed phases
are immutable.  Shrinking the horizon below a day the checkpoint already
records is refused — that would orphan recorded phases — and every other
fingerprint field still must match exactly (see
:data:`EXTENSIBLE_FINGERPRINT_KEYS`).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.crawler.crawler import CrawlResult
from repro.crawler.storage import CrawlStorage
from repro.detector.records import SiteDetection
from repro.errors import CheckpointError, ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.crawler.engine import CrawlPlan, DetectionSinkLike

__all__ = [
    "CHECKPOINT_VERSION",
    "EXTENSIBLE_FINGERPRINT_KEYS",
    "PhaseProgress",
    "CrawlCheckpoint",
    "CrawlCheckpointer",
    "plan_fingerprint",
    "population_fingerprint",
    "canonical_fingerprint",
]

#: Bump whenever the on-disk checkpoint format changes incompatibly; loading
#: a checkpoint written by a different version refuses rather than guessing.
CHECKPOINT_VERSION = 1

#: Fingerprint fields that may legitimately differ between the recorded
#: campaign and a resuming run.  ``recrawl_days`` is the campaign's day
#: horizon: growing it appends net-new phases after the recorded ones and
#: never rewrites a completed phase, so a finished campaign can keep being
#: extended day by day (the recrawl daemon's whole mode of operation).
#: Shrinking below a recorded day is still refused in
#: :meth:`CrawlCheckpointer.resume`.
EXTENSIBLE_FINGERPRINT_KEYS = ("recrawl_days",)


def _digest(parts: Iterable[str]) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def population_fingerprint(domains: Iterable[str]) -> str:
    """Stable identity of a crawl population: its ordered domain list."""
    return _digest(domains)


def plan_fingerprint(plan: "CrawlPlan") -> str:
    """Stable identity of a shard plan: seed plus every shard's site run."""
    parts = [str(plan.seed), str(plan.n_sites)]
    for shard in plan.shards:
        parts.append(f"shard:{shard.index}@{shard.start}")
        parts.extend(publisher.domain for publisher in shard.publishers)
    return _digest(parts)


def canonical_fingerprint(fingerprint: Mapping[str, object]) -> str:
    """The canonical JSON form fingerprints are stored and compared in."""
    return json.dumps(fingerprint, sort_keys=True)


def _fingerprint_diff(
    recorded: Mapping[str, object], current: Mapping[str, object]
) -> str:
    """Human-readable summary of which fingerprint fields disagree."""
    keys = sorted(set(recorded) | set(current))
    diffs = [
        f"{key}: checkpoint={recorded.get(key)!r} run={current.get(key)!r}"
        for key in keys
        if recorded.get(key) != current.get(key)
    ]
    return "; ".join(diffs) or "(structurally different fingerprints)"


# ---------------------------------------------------------------------------
# The on-disk state


@dataclass(frozen=True)
class PhaseProgress:
    """Recorded progress of one crawl phase (one ``crawl_day``).

    The engine emits shards strictly in shard order, so the completed-shard
    set is always the prefix ``{0, …, k-1}``; it is stored explicitly in the
    file and validated back into a prefix on load.
    """

    crawl_day: int
    plan_hash: str
    n_shards: int
    completed_shards: tuple[int, ...]
    #: Detections emitted (and flushed) for this phase so far.
    n_detections: int
    pages_visited: int
    sessions_started: int
    timed_out_domains: tuple[str, ...]
    #: Shards quarantined by the supervision layer (as
    #: :meth:`~repro.crawler.crawler.ShardFailure.to_dict` mappings).
    #: Non-empty marks the phase *degraded*: the crawl gave up on these
    #: shards, and a resume re-crawls everything from the completed prefix
    #: on — clearing this field in the process.  Absent in pre-supervision
    #: checkpoints, which load as an empty tuple.
    quarantined: tuple[Mapping, ...] = ()

    @property
    def done(self) -> bool:
        return len(self.completed_shards) >= self.n_shards

    def to_dict(self) -> dict:
        return {
            "crawl_day": self.crawl_day,
            "plan_hash": self.plan_hash,
            "n_shards": self.n_shards,
            "completed_shards": list(self.completed_shards),
            "n_detections": self.n_detections,
            "pages_visited": self.pages_visited,
            "sessions_started": self.sessions_started,
            "timed_out_domains": list(self.timed_out_domains),
            "quarantined": [dict(entry) for entry in self.quarantined],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PhaseProgress":
        try:
            phase = cls(
                crawl_day=int(data["crawl_day"]),
                plan_hash=str(data["plan_hash"]),
                n_shards=int(data["n_shards"]),
                completed_shards=tuple(int(i) for i in data["completed_shards"]),
                n_detections=int(data["n_detections"]),
                pages_visited=int(data["pages_visited"]),
                sessions_started=int(data["sessions_started"]),
                timed_out_domains=tuple(str(d) for d in data["timed_out_domains"]),
                quarantined=tuple(dict(entry) for entry in data.get("quarantined", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint phase record: {exc}") from exc
        if phase.completed_shards != tuple(range(len(phase.completed_shards))):
            raise CheckpointError(
                f"checkpoint phase {phase.crawl_day} records non-prefix completed "
                f"shards {phase.completed_shards}: the engine only checkpoints "
                f"contiguous prefixes, so the file is corrupt"
            )
        if len(phase.completed_shards) > phase.n_shards or phase.n_detections < 0:
            raise CheckpointError(
                f"checkpoint phase {phase.crawl_day} is internally inconsistent"
            )
        return phase


@dataclass(frozen=True)
class CrawlCheckpoint:
    """Everything needed to resume an interrupted crawl campaign.

    Written atomically at shard boundaries; see the module docstring for the
    resume protocol and :class:`CrawlCheckpointer` for the object that drives
    it during a crawl.
    """

    fingerprint: Mapping[str, object]
    #: Byte offset of the last shard-boundary sink flush; everything before
    #: it is complete canonical records, everything after is discardable tail.
    sink_offset: int
    phases: tuple[PhaseProgress, ...]
    version: int = CHECKPOINT_VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "fingerprint": dict(self.fingerprint),
            "sink_offset": self.sink_offset,
            "phases": [phase.to_dict() for phase in self.phases],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CrawlCheckpoint":
        try:
            version = int(data["version"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint format version {version} is not supported "
                f"(this build writes version {CHECKPOINT_VERSION})"
            )
        try:
            fingerprint = dict(data["fingerprint"])
            sink_offset = int(data["sink_offset"])
            phases = tuple(PhaseProgress.from_dict(p) for p in data["phases"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc
        if sink_offset < 0:
            raise CheckpointError("checkpoint sink offset cannot be negative")
        days = [phase.crawl_day for phase in phases]
        if len(set(days)) != len(days):
            raise CheckpointError(f"checkpoint repeats crawl days: {days}")
        for phase in phases[:-1]:
            if not phase.done:
                raise CheckpointError(
                    f"checkpoint phase {phase.crawl_day} is unfinished but not "
                    f"the last phase: the file is corrupt"
                )
        return cls(fingerprint=fingerprint, sink_offset=sink_offset, phases=phases)

    def save(self, path: str | Path) -> None:
        """Write the checkpoint atomically (temp file + fsync + rename).

        A crash at any instant leaves either the previous checkpoint or this
        one on disk, never a torn file.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        payload = json.dumps(self.to_dict(), sort_keys=True, indent=2)
        try:
            with tmp.open("w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            raise CheckpointError(f"could not write checkpoint {path}: {exc}") from exc

    @classmethod
    def load(cls, path: str | Path) -> "CrawlCheckpoint":
        path = Path(path)
        if not path.exists():
            raise CheckpointError(f"no checkpoint to resume at {path}")
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"could not read checkpoint {path}: {exc}") from exc
        if not isinstance(data, dict):
            raise CheckpointError(f"checkpoint {path} is not a JSON object")
        return cls.from_dict(data)


# ---------------------------------------------------------------------------
# The live recorder


class CrawlCheckpointer:
    """Owns one checkpoint file for the lifetime of one crawl campaign.

    Built either :meth:`fresh` (start a new campaign, overwriting any stale
    checkpoint on the first boundary) or :meth:`resume` (validate an existing
    checkpoint against the current configuration and recover the sink).  The
    engine calls :meth:`begin_phase` once per :meth:`CrawlEngine.crawl` and
    :meth:`record_progress` at shard boundaries; callers outside the engine
    never need those two.
    """

    def __init__(
        self,
        path: str | Path,
        fingerprint: Mapping[str, object],
        *,
        _checkpoint: CrawlCheckpoint | None = None,
        _prior_detections: list[SiteDetection] | None = None,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = dict(fingerprint)
        self._phases: list[PhaseProgress] = (
            list(_checkpoint.phases) if _checkpoint is not None else []
        )
        self._sink_offset = _checkpoint.sink_offset if _checkpoint is not None else 0
        self._prior = list(_prior_detections or [])
        self.resumed = _checkpoint is not None

    @classmethod
    def fresh(
        cls, path: str | Path, fingerprint: Mapping[str, object]
    ) -> "CrawlCheckpointer":
        """Start checkpointing a brand-new campaign (sink starts at byte 0)."""
        return cls(path, fingerprint)

    @classmethod
    def resume(
        cls,
        path: str | Path,
        fingerprint: Mapping[str, object],
        storage: CrawlStorage,
    ) -> "CrawlCheckpointer":
        """Load a checkpoint, validate it, and recover the sink file.

        Refuses (raising :class:`CheckpointError`) when the fingerprint does
        not match the current run — resuming under a different seed, population
        or configuration would silently corrupt the dataset.  The day horizon
        (``recrawl_days``, see :data:`EXTENSIBLE_FINGERPRINT_KEYS`) is the one
        extensible field: it may grow, appending new crawl days to a finished
        campaign, but shrinking below a day the checkpoint already records is
        refused.  The sink's half-flushed tail is truncated to the recorded
        offset and the kept prefix re-parsed; its record count must match what
        the checkpoint's phases add up to, so a replaced or damaged sink fails
        loudly instead of double-counting.
        """
        checkpoint = CrawlCheckpoint.load(path)
        recorded = {
            key: value
            for key, value in checkpoint.fingerprint.items()
            if key not in EXTENSIBLE_FINGERPRINT_KEYS
        }
        current = {
            key: value
            for key, value in fingerprint.items()
            if key not in EXTENSIBLE_FINGERPRINT_KEYS
        }
        if canonical_fingerprint(recorded) != canonical_fingerprint(current):
            raise CheckpointError(
                "checkpoint fingerprint does not match this run; refusing to "
                "resume — " + _fingerprint_diff(recorded, current)
            )
        horizon = fingerprint.get("recrawl_days")
        if horizon is not None and checkpoint.phases:
            last_day = max(phase.crawl_day for phase in checkpoint.phases)
            if int(horizon) < last_day:
                raise CheckpointError(
                    f"checkpoint already records crawl day {last_day} but this "
                    f"run's horizon is recrawl_days={horizon}; completed days "
                    f"are immutable — resume with recrawl_days >= {last_day} "
                    f"to extend the campaign instead of shrinking it"
                )
        prior = storage.recover_to(checkpoint.sink_offset)
        expected = sum(phase.n_detections for phase in checkpoint.phases)
        if len(prior) != expected:
            raise CheckpointError(
                f"sink {storage.path} holds {len(prior)} detections below the "
                f"checkpoint offset but the checkpoint records {expected}: the "
                f"file does not belong to this checkpoint"
            )
        return cls(path, fingerprint, _checkpoint=checkpoint, _prior_detections=prior)

    # -- state views -------------------------------------------------------------
    @property
    def sink_offset(self) -> int:
        """The last recorded shard-boundary byte offset of the sink."""
        return self._sink_offset

    def checkpoint(self) -> CrawlCheckpoint:
        """A snapshot of the current recorded state."""
        return CrawlCheckpoint(
            fingerprint=self.fingerprint,
            sink_offset=self._sink_offset,
            phases=tuple(self._phases),
        )

    def save(self) -> None:
        """Persist the current state atomically to the checkpoint path."""
        self.checkpoint().save(self.path)

    # -- engine-facing protocol ------------------------------------------------
    def begin_phase(
        self, plan: "CrawlPlan", crawl_day: int, sink: "DetectionSinkLike"
    ) -> tuple[CrawlResult, int]:
        """Open (or re-open) the phase for ``crawl_day`` under ``plan``.

        Returns ``(prior, skip)``: the :class:`CrawlResult` already produced
        for this phase before the interruption (reconstructed from the
        recovered sink records plus the recorded counters) and the number of
        leading shards to skip.  For a phase the checkpoint never saw, that is
        an empty result and zero.  For a finished phase the whole plan is
        skipped, which is what makes re-running a completed campaign a no-op.

        The recovered records are verified against the deterministic re-plan:
        their domains must equal the canonical site order of the shards they
        claim to cover, and a mid-flight phase must re-plan to the recorded
        plan hash (same worker count) so the completed prefix still falls on
        shard boundaries.
        """
        offset = getattr(sink, "offset", None)
        if offset is None:
            raise ConfigurationError(
                "checkpointing needs an offset-tracking sink "
                "(e.g. CrawlStorage.open_sink())"
            )
        if offset != self._sink_offset:
            raise CheckpointError(
                f"sink is positioned at byte {offset} but the checkpoint "
                f"records {self._sink_offset}; resume must reuse the recovered "
                f"sink (append mode) and a fresh campaign must start at byte 0"
            )
        phase = next((p for p in self._phases if p.crawl_day == crawl_day), None)
        if phase is None:
            self._phases.append(
                PhaseProgress(
                    crawl_day=crawl_day,
                    plan_hash=plan_fingerprint(plan),
                    n_shards=len(plan.shards),
                    completed_shards=(),
                    n_detections=0,
                    pages_visited=0,
                    sessions_started=0,
                    timed_out_domains=(),
                )
            )
            self.save()
            return CrawlResult(), 0

        start = 0
        for earlier in self._phases:
            if earlier is phase:
                break
            start += earlier.n_detections
        detections = self._prior[start : start + phase.n_detections]
        if len(detections) != phase.n_detections:  # pragma: no cover - resume() checks
            raise CheckpointError(
                f"checkpoint phase {crawl_day} records {phase.n_detections} "
                f"detections but only {len(detections)} were recovered"
            )
        if phase.done:
            skip = len(plan.shards)
            expected_domains = plan.site_order
        else:
            if phase is not self._phases[-1]:
                raise CheckpointError(
                    f"phase {crawl_day} is mid-flight but not the last recorded "
                    f"phase: the checkpoint is corrupt"
                )
            if plan_fingerprint(plan) != phase.plan_hash:
                raise CheckpointError(
                    f"phase {crawl_day} was interrupted under a different shard "
                    f"plan; resume it with the original worker count, shard "
                    f"oversubscription factor and site list (finished phases "
                    f"may re-plan freely; checkpoints from before the "
                    f"shard_oversubscribe knob existed planned one shard per "
                    f"worker — resume those with --oversubscribe 1)"
                )
            if phase.quarantined:
                # Re-opening a degraded phase: the quarantined shards are
                # about to be re-crawled (everything past the completed
                # prefix is), so the quarantine record is cleared — it will
                # be re-recorded only if they fail again.
                phase = replace(phase, quarantined=())
                self._phases[-1] = phase
            skip = len(phase.completed_shards)
            expected_domains = tuple(
                publisher.domain
                for shard in plan.shards[:skip]
                for publisher in shard.publishers
            )
        if tuple(d.domain for d in detections) != expected_domains:
            raise CheckpointError(
                f"recovered sink records for phase {crawl_day} do not match the "
                f"deterministic re-plan: the sink or checkpoint was tampered "
                f"with or belongs to a different campaign"
            )
        prior = CrawlResult(
            detections=list(detections),
            timed_out_domains=list(phase.timed_out_domains),
            pages_visited=phase.pages_visited,
            sessions_started=phase.sessions_started,
        )
        return prior, skip

    def record_progress(
        self,
        crawl_day: int,
        *,
        completed_shards: int,
        n_detections: int,
        pages_visited: int,
        sessions_started: int,
        timed_out_domains: tuple[str, ...],
        sink_offset: int,
        persist: bool = True,
    ) -> None:
        """Record that shards ``0..completed_shards-1`` are emitted + flushed.

        Counters are phase-cumulative (resumed prefix included).  With
        ``persist=False`` only the in-memory state advances — the engine uses
        this to throttle checkpoint writes to every
        ``CrawlConfig.checkpoint_every_shards``-th boundary; a later persist
        (or the next phase's :meth:`begin_phase`) writes the cumulative state.
        """
        if not self._phases or self._phases[-1].crawl_day != crawl_day:
            raise CheckpointError(
                f"record_progress for day {crawl_day} without a matching "
                f"begin_phase; phases are recorded strictly in crawl order"
            )
        self._phases[-1] = replace(
            self._phases[-1],
            completed_shards=tuple(range(completed_shards)),
            n_detections=n_detections,
            pages_visited=pages_visited,
            sessions_started=sessions_started,
            timed_out_domains=tuple(timed_out_domains),
        )
        self._sink_offset = sink_offset
        if persist:
            self.save()

    def record_quarantine(self, crawl_day: int, failures: Iterable) -> None:
        """Persist the phase's quarantined shards (degraded completion).

        ``failures`` are :class:`~repro.crawler.crawler.ShardFailure`
        instances (or dicts in that shape).  Also persists any progress that
        :meth:`record_progress` recorded in-memory-only under checkpoint
        throttling, so a resume sees the true completed prefix.
        """
        if not self._phases or self._phases[-1].crawl_day != crawl_day:
            raise CheckpointError(
                f"record_quarantine for day {crawl_day} without a matching "
                f"begin_phase; phases are recorded strictly in crawl order"
            )
        entries = tuple(
            entry if isinstance(entry, Mapping) else entry.to_dict()
            for entry in failures
        )
        self._phases[-1] = replace(self._phases[-1], quarantined=entries)
        self.save()
