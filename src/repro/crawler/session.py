"""Crawl sessions: clean-slate browser instances.

The paper stresses that every page visit starts from a clean state — no
cookies, no history, no user profile — so that bids reflect a "vanilla"
profile and measurements are independent.  A :class:`CrawlSession` owns one
browser engine configuration and hands out page loads; it can be killed and
re-created, mirroring how the crawler restarts Chrome after a timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.browser.engine import BrowserEngine, PageLoadResult
from repro.ecosystem.publishers import Publisher
from repro.errors import CrawlError
from repro.hb.environment import AuctionEnvironment

__all__ = ["CrawlSession"]


@dataclass
class CrawlSession:
    """One logical browser session used by the crawler.

    The session tracks how many pages it served and whether it has been
    killed; a killed session refuses further loads, forcing the crawler to
    start a fresh one (which is also what guarantees the clean state).

    ``engine`` lets a worker share one :class:`BrowserEngine` (and with it
    the precompiled profile table and the per-worker scratch context) across
    the many short-lived sessions a shard burns through; the engine is
    stateless between loads, so sharing it cannot leak state across the
    clean-slate boundary — but the scratch context makes loads sequential,
    so a fast-path engine belongs to exactly one worker (thread), never to
    sessions loading concurrently.  Without it the session builds its own
    engine, the original behaviour.
    """

    environment: AuctionEnvironment
    seed: int = 2019
    page_load_timeout_ms: float = 60_000.0
    extra_dwell_ms: float = 5_000.0
    pages_loaded: int = 0
    killed: bool = False
    engine: BrowserEngine | None = None
    _engine: BrowserEngine = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._engine = self.engine or BrowserEngine(
            self.environment,
            seed=self.seed,
            page_load_timeout_ms=self.page_load_timeout_ms,
            extra_dwell_ms=self.extra_dwell_ms,
        )

    def load(self, publisher: Publisher, *, visit_index: int = 0) -> PageLoadResult:
        """Load one page with a clean browser state."""
        if self.killed:
            raise CrawlError("cannot load pages with a killed session")
        result = self._engine.load(publisher, visit_index=visit_index)
        self.pages_loaded += 1
        return result

    def kill(self) -> None:
        """Terminate the session (after a timeout or at crawler shutdown)."""
        self.killed = True

    def restart(self) -> "CrawlSession":
        """Return a brand new clean session with the same configuration."""
        return CrawlSession(
            environment=self.environment,
            seed=self.seed,
            page_load_timeout_ms=self.page_load_timeout_ms,
            extra_dwell_ms=self.extra_dwell_ms,
            engine=self.engine,
        )
