"""Reusable fault-injection tooling for exercising crawl robustness.

Promoted from ``tests/crash_harness.py`` so that benchmarks, the service,
and the CLI (``repro run --inject-faults``) can inject faults without
reaching into the test tree.
"""

from repro.testing.faults import (
    Fault,
    FaultAction,
    FaultInjectingSink,
    FaultPlan,
    FaultyBackend,
    InjectedFault,
    SimulatedCrash,
    interrupted_then_resumed,
    parse_fault_plan,
    uninterrupted_baseline,
)

__all__ = [
    "Fault",
    "FaultAction",
    "FaultInjectingSink",
    "FaultPlan",
    "FaultyBackend",
    "InjectedFault",
    "SimulatedCrash",
    "interrupted_then_resumed",
    "parse_fault_plan",
    "uninterrupted_baseline",
]
