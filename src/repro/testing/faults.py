"""Fault injection for crawl supervision and resumable-crawl tests.

Two generations of tooling live here:

* :class:`FaultyBackend` (the original crash harness) wraps a real execution
  backend and dies after handing the engine a configured number of shard
  results.  The crash is raised from the backend's ``execute`` generator,
  i.e. inside the engine's merge loop and *above* the supervision layer:
  everything the engine already emitted and flushed stays on disk, everything
  in flight is lost — the same observable state as a SIGKILL between two
  shard boundaries.  Resume tests build on it.

* :class:`FaultPlan` is the composable subsystem: crash / hang / slow /
  raise / sink-IO-error faults keyed by shard index, lifetime submission
  counter, or probability (seeded RNG), delivered *below* the supervision
  layer.  Backends ask the plan for a :class:`FaultAction` at submit time
  and ship the picklable action into the worker, where it fires before the
  shard simulates; :class:`FaultInjectingSink` flakes detection writes.
  Supervision must absorb every one of these without changing a byte of
  output.

Fault spec grammar (``parse_fault_plan``)::

    SPEC    := [ "seed=" INT "," ] FAULT { "," FAULT }
    FAULT   := KIND "@" KEY "=" NUMBER [ "x" TIMES ] [ "~" DELAY ]
    KIND    := "crash" | "hang" | "slow" | "raise" | "sink"
    KEY     := "shard" | "count" | "p"

``shard=K`` fires when shard ``K`` is submitted, ``count=K`` fires from the
K-th lifetime submission onward, ``p=F`` fires each submission with
probability ``F`` (seeded, reproducible).  ``xTIMES`` caps total firings
(default 1); ``~DELAY`` sets the sleep for hang/slow faults in seconds.
Example: ``seed=7,crash@p=0.2x4,hang@shard=3~5.0,sink@count=10x2``.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import re
import signal
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, StorageError

__all__ = [
    "Fault",
    "FaultAction",
    "FaultInjectingSink",
    "FaultPlan",
    "FaultyBackend",
    "InjectedFault",
    "SimulatedCrash",
    "interrupted_then_resumed",
    "parse_fault_plan",
    "uninterrupted_baseline",
]

FAULT_KINDS = ("crash", "hang", "slow", "raise", "sink")

_DEFAULT_DELAYS = {"hang": 30.0, "slow": 0.1}


class SimulatedCrash(RuntimeError):
    """The injected failure.

    Deliberately *not* a :class:`repro.errors.ReproError`: a real crash
    (OOM kill, power loss) is not a library error, and tests must see it
    surface unmasked through every cleanup layer.
    """


class InjectedFault(RuntimeError):
    """A transient in-worker failure injected by a :class:`FaultPlan`.

    Like :class:`SimulatedCrash`, deliberately not a ``ReproError``: it
    models arbitrary worker-side breakage that supervision must classify
    as retryable without knowing its type.
    """


@dataclass(frozen=True)
class FaultAction:
    """A picklable fault, decided in the parent, executed in the worker.

    The plan itself (lifetime counters, seeded RNG) never leaves the parent
    process; only the resolved action ships with the shard task.
    """

    kind: str
    shard: int
    delay: float = 0.0

    def __call__(self) -> None:
        if self.kind in ("hang", "slow"):
            time.sleep(self.delay)
            return
        if self.kind == "crash":
            # In a forked/spawned pool worker, die the way an OOM kill
            # would: no exception, no cleanup, the pool just breaks.  In
            # thread/serial workers a hard kill would take the whole run
            # down, so the crash degrades to an uncatchable-by-the-shard
            # exception instead.
            if multiprocessing.parent_process() is not None:
                os.kill(os.getpid(), signal.SIGKILL)
            raise SimulatedCrash(f"injected crash in shard {self.shard}")
        if self.kind == "raise":
            raise InjectedFault(f"injected failure in shard {self.shard}")
        raise ConfigurationError(f"unknown fault kind {self.kind!r}")


@dataclass
class Fault:
    """One fault rule: what to inject and when it triggers.

    Exactly one of ``shard`` / ``count`` / ``p`` must be set.  ``times``
    caps lifetime firings; ``fired`` tracks them.
    """

    kind: str
    shard: int | None = None
    count: int | None = None
    p: float | None = None
    times: int = 1
    delay: float | None = None
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        keys = sum(value is not None for value in (self.shard, self.count, self.p))
        if keys != 1:
            raise ConfigurationError(
                "fault needs exactly one trigger key: shard=, count=, or p="
            )
        if self.kind == "sink" and self.shard is not None:
            raise ConfigurationError("sink faults cannot key on shard=")
        if self.p is not None and not 0.0 < self.p <= 1.0:
            raise ConfigurationError(f"fault probability must be in (0, 1], got {self.p}")
        if self.times < 1:
            raise ConfigurationError(f"fault times must be >= 1, got x{self.times}")

    @property
    def exhausted(self) -> bool:
        return self.fired >= self.times

    def spec(self) -> str:
        """Round-trip back to the spec grammar (for logs and reports)."""
        if self.shard is not None:
            trigger = f"shard={self.shard}"
        elif self.count is not None:
            trigger = f"count={self.count}"
        else:
            trigger = f"p={self.p:g}"
        text = f"{self.kind}@{trigger}"
        if self.times != 1:
            text += f"x{self.times}"
        if self.delay is not None:
            text += f"~{self.delay:g}"
        return text


class FaultPlan:
    """A composable set of fault rules with deterministic trigger state.

    The plan is consulted once per shard submission (``next_action``) and
    once per sink write (``sink_exception``); probabilistic rules draw from
    one seeded RNG so a given spec misbehaves reproducibly.  All state lives
    in the parent process — only :class:`FaultAction` instances cross into
    workers.
    """

    def __init__(self, faults, *, seed: int = 0) -> None:
        self.faults = list(faults)
        self.seed = seed
        self._rng = random.Random(seed)
        self.submissions = 0
        self.sink_writes = 0

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, faults=[{self.describe()}])"

    def describe(self) -> str:
        return ",".join(fault.spec() for fault in self.faults)

    @property
    def total_fired(self) -> int:
        return sum(fault.fired for fault in self.faults)

    def _triggers(self, fault: Fault, serial: int, shard_index: int | None) -> bool:
        if fault.exhausted:
            return False
        if fault.shard is not None:
            return shard_index == fault.shard
        if fault.count is not None:
            return serial >= fault.count
        return self._rng.random() < fault.p

    def next_action(self, shard_index: int, attempt: int = 0) -> FaultAction | None:
        """Decide the fault (if any) for one shard submission.

        Every call advances the lifetime submission counter, including
        retries, so ``count=`` rules see resubmissions too.  The first
        matching non-sink rule wins.
        """
        serial = self.submissions
        self.submissions += 1
        for fault in self.faults:
            if fault.kind == "sink":
                continue
            if self._triggers(fault, serial, shard_index):
                fault.fired += 1
                delay = fault.delay
                if delay is None:
                    delay = _DEFAULT_DELAYS.get(fault.kind, 0.0)
                return FaultAction(kind=fault.kind, shard=shard_index, delay=delay)
        return None

    def sink_exception(self) -> StorageError | None:
        """Decide whether the next sink write should fail transiently."""
        serial = self.sink_writes
        self.sink_writes += 1
        for fault in self.faults:
            if fault.kind != "sink":
                continue
            if self._triggers(fault, serial, shard_index=None):
                fault.fired += 1
                return StorageError(
                    f"injected sink write failure ({fault.spec()}, write #{serial})"
                )
        return None

    @property
    def has_sink_faults(self) -> bool:
        return any(fault.kind == "sink" for fault in self.faults)

    def wrap_sink(self, sink):
        """Wrap ``sink`` if this plan injects sink faults; else pass through."""
        if sink is None or not self.has_sink_faults:
            return sink
        return FaultInjectingSink(sink, self)


class FaultInjectingSink:
    """Wraps a ``DetectionSink`` and flakes writes on the plan's orders.

    The injected :class:`~repro.errors.StorageError` is raised *before*
    delegating, so a failed write leaves the inner sink untouched and a
    retry of the same record is safe.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self.injected = 0

    def write(self, record) -> None:
        exc = self._plan.sink_exception()
        if exc is not None:
            self.injected += 1
            raise exc
        self._inner.write(record)

    def flush(self) -> None:
        self._inner.flush()

    @property
    def offset(self) -> int:
        return self._inner.offset

    def __getattr__(self, name):
        return getattr(self._inner, name)


_FAULT_TOKEN = re.compile(
    r"(?P<kind>[a-z]+)@(?P<key>shard|count|p)=(?P<value>[0-9.]+)"
    r"(?:x(?P<times>\d+))?(?:~(?P<delay>[0-9.]+))?"
)


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse the ``--inject-faults`` grammar into a :class:`FaultPlan`.

    See the module docstring for the grammar.  Raises
    :class:`~repro.errors.ConfigurationError` on malformed specs.
    """
    tokens = [token.strip() for token in spec.split(",") if token.strip()]
    if not tokens:
        raise ConfigurationError("empty fault spec")
    seed = 0
    if tokens[0].startswith("seed="):
        try:
            seed = int(tokens[0][len("seed="):])
        except ValueError:
            raise ConfigurationError(f"bad fault-plan seed: {tokens[0]!r}") from None
        tokens = tokens[1:]
    if not tokens:
        raise ConfigurationError("fault spec names a seed but no faults")
    faults = []
    for token in tokens:
        match = _FAULT_TOKEN.fullmatch(token)
        if match is None:
            raise ConfigurationError(
                f"malformed fault {token!r}; expected kind@key=value[xN][~delay]"
            )
        key = match.group("key")
        value = match.group("value")
        kwargs = {
            "kind": match.group("kind"),
            "times": int(match.group("times")) if match.group("times") else 1,
            "delay": float(match.group("delay")) if match.group("delay") else None,
        }
        if key == "p":
            kwargs["p"] = float(value)
        else:
            try:
                kwargs[key] = int(value)
            except ValueError:
                raise ConfigurationError(
                    f"fault {token!r}: {key}= takes an integer"
                ) from None
        faults.append(Fault(**kwargs))
    return FaultPlan(faults, seed=seed)


class FaultyBackend:
    """Wraps a real backend and crashes after ``fail_after`` shard results.

    ``fail_after=k`` hands the engine exactly ``k`` shard results — counted
    across the backend's whole lifetime, so a multi-phase campaign can die
    mid-re-crawl — and then raises :class:`SimulatedCrash`.  ``k=0`` dies
    before the first shard lands, ``k=n_shards`` dies after a one-phase crawl
    finished but before ``crawl()`` could return, and a ``fail_after`` beyond
    the campaign's total shard count never fires.

    The crash fires in the engine's merge loop, above shard supervision, so
    it is *not* retried — it models the whole crawl process dying.
    """

    def __init__(self, inner, fail_after: int) -> None:
        self.inner = inner
        self.fail_after = fail_after
        self.produced = 0
        self.crashes = 0

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def streams_inline(self) -> bool:
        return self.inner.streams_inline

    def prepare(self, context) -> None:
        self.inner.prepare(context)

    def shutdown(self) -> None:
        self.inner.shutdown()

    def execute(self, shards, crawl_day, on_detection):
        results = self.inner.execute(shards, crawl_day, on_detection)
        while True:
            if self.produced == self.fail_after:
                self.crashes += 1
                raise SimulatedCrash(
                    f"injected crash after {self.produced} shard results"
                )
            try:
                item = next(results)
            except StopIteration:
                return
            yield item
            self.produced += 1


def interrupted_then_resumed(
    environment,
    detector,
    config,
    sites,
    *,
    tmp_path,
    fail_after: int,
    crawl_day: int = 0,
    flush_every: int = 3,
    resume_config=None,
    store_format: str = "jsonl",
):
    """Crash a checkpointed crawl after ``fail_after`` shards, then resume it.

    Returns ``(result, storage)``: the resumed (complete) crawl result and
    the storage whose file now holds the recovered-plus-resumed bytes.  When
    ``fail_after`` exceeds the shard count the first run simply completes and
    the "resume" is a no-op replay — which must also be byte-identical.
    """
    from repro.crawler.checkpoint import CrawlCheckpointer
    from repro.crawler.colstore import storage_for
    from repro.crawler.engine import CrawlEngine, backend_from_name

    fingerprint = {
        "seed": config.seed,
        "sites": [publisher.domain for publisher in sites],
    }
    suffix = "hbc" if store_format == "columnar" else "jsonl"
    storage = storage_for(tmp_path / f"interrupted.{suffix}", format=store_format)
    checkpoint_path = tmp_path / "checkpoint.json"

    faulty = FaultyBackend(
        backend_from_name(config.backend, workers=config.workers), fail_after
    )
    recorder = CrawlCheckpointer.fresh(checkpoint_path, fingerprint)
    engine = CrawlEngine(environment, detector, config, backend=faulty)
    crashed = False
    try:
        with engine, storage.open_sink(flush_every=flush_every) as sink:
            engine.crawl(sites, crawl_day=crawl_day, sink=sink, checkpoint=recorder)
    except SimulatedCrash:
        crashed = True
    n_shards = len(engine.plan(sites).shards)
    assert crashed == (fail_after <= n_shards)

    resumed = CrawlCheckpointer.resume(checkpoint_path, fingerprint, storage)
    with CrawlEngine(environment, detector, resume_config or config) as engine:
        with storage.open_sink(append=True, flush_every=flush_every) as sink:
            result = engine.crawl(
                sites, crawl_day=crawl_day, sink=sink, checkpoint=resumed
            )
    return result, storage


def uninterrupted_baseline(
    environment, detector, config, sites, *, tmp_path, crawl_day: int = 0,
    flush_every: int = 3, store_format: str = "jsonl",
):
    """One-shot reference crawl: the bytes and result resume must reproduce."""
    from repro.crawler.colstore import storage_for
    from repro.crawler.engine import CrawlEngine

    suffix = "hbc" if store_format == "columnar" else "jsonl"
    storage = storage_for(tmp_path / f"baseline.{suffix}", format=store_format)
    with CrawlEngine(environment, detector, config) as engine:
        with storage.open_sink(flush_every=flush_every) as sink:
            result = engine.crawl(sites, crawl_day=crawl_day, sink=sink)
    return result, storage
